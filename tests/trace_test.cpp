// Tests for workload trace recording, serialization and replay.
#include <gtest/gtest.h>

#include <sstream>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/trace.hpp"

namespace cbps::workload {
namespace {

TEST(TraceFormatTest, SaveLoadRoundTrip) {
  Trace trace;
  TraceOp sub;
  sub.kind = TraceOp::Kind::kSubscribe;
  sub.at = sim::sec(5);
  sub.node = 3;
  sub.sub_id = 1;
  sub.ttl = sim::sec(100);
  sub.constraints = {{0, {10, 20}}, {2, {-5, 5}}};
  trace.add(sub);

  TraceOp pub;
  pub.kind = TraceOp::Kind::kPublish;
  pub.at = sim::sec(7);
  pub.node = 9;
  pub.values = {15, 0, 2};
  trace.add(pub);

  TraceOp unsub;
  unsub.kind = TraceOp::Kind::kUnsubscribe;
  unsub.at = sim::sec(50);
  unsub.node = 3;
  unsub.sub_id = 1;
  trace.add(unsub);

  std::stringstream ss;
  trace.save(ss);
  std::string error;
  const auto loaded = Trace::load(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), 3u);

  const auto& ops = loaded->ops();
  EXPECT_EQ(ops[0].kind, TraceOp::Kind::kSubscribe);
  EXPECT_EQ(ops[0].at, sim::sec(5));
  EXPECT_EQ(ops[0].node, 3u);
  EXPECT_EQ(ops[0].ttl, sim::sec(100));
  ASSERT_EQ(ops[0].constraints.size(), 2u);
  EXPECT_EQ(ops[0].constraints[1].range, (ClosedInterval{-5, 5}));
  EXPECT_EQ(ops[1].kind, TraceOp::Kind::kPublish);
  EXPECT_EQ(ops[1].values, (std::vector<Value>{15, 0, 2}));
  EXPECT_EQ(ops[2].kind, TraceOp::Kind::kUnsubscribe);
  EXPECT_EQ(loaded->subscription_count(), 1u);
  EXPECT_EQ(loaded->publication_count(), 1u);
}

TEST(TraceFormatTest, NeverTtlRoundTrips) {
  Trace trace;
  TraceOp sub;
  sub.kind = TraceOp::Kind::kSubscribe;
  sub.ttl = sim::kSimTimeNever;
  sub.constraints = {{0, {1, 2}}};
  trace.add(sub);
  std::stringstream ss;
  trace.save(ss);
  const auto loaded = Trace::load(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->ops()[0].ttl, sim::kSimTimeNever);
}

TEST(TraceFormatTest, CommentsAndBlanksIgnored) {
  std::stringstream ss(
      "# header\n"
      "\n"
      "pub 100 2 5 6\n"
      "# trailing\n");
  const auto loaded = Trace::load(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(TraceFormatTest, MalformedInputRejectedWithLineNumbers) {
  const char* bad[] = {
      "frobnicate 1 2 3\n",        // unknown verb
      "pub 100 2\n",               // publication with no values
      "sub 1 2 3 oops 0:1:2\n",    // bad ttl
      "sub 1 2 3 never 0:9:1\n",   // inverted range
      "sub 1 2 3 never 0-1-2\n",   // bad constraint syntax
      "unsub 1\n",                 // truncated
  };
  for (const char* text : bad) {
    std::stringstream ss(text);
    std::string error;
    EXPECT_FALSE(Trace::load(ss, &error).has_value()) << text;
    EXPECT_NE(error.find("line 1"), std::string::npos) << text;
  }
}

// ---------------------------------------------------------------------------
// Record + replay
// ---------------------------------------------------------------------------

pubsub::SystemConfig replay_config() {
  pubsub::SystemConfig cfg;
  cfg.nodes = 24;
  cfg.seed = 77;
  cfg.chord.ring = RingParams{11};
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  return cfg;
}

TEST(TraceReplayTest, ReplayReproducesTheRecordedRun) {
  const pubsub::Schema schema = pubsub::Schema::uniform(3, 9'999);

  // Record a driven run.
  Trace trace;
  std::uint64_t recorded_notifications = 0;
  std::uint64_t recorded_hops = 0;
  {
    pubsub::PubSubSystem system(replay_config(), schema);
    WorkloadParams wp;
    wp.matching_probability = 0.8;
    WorkloadGenerator gen(schema, wp, 5);
    DriverParams dp;
    dp.max_subscriptions = 25;
    dp.max_publications = 50;
    Driver driver(system, gen, dp, nullptr, &trace);
    driver.start();
    driver.run_to_completion();
    recorded_notifications = system.notifications_delivered();
    recorded_hops = system.traffic().total_hops();
  }
  EXPECT_EQ(trace.subscription_count(), 25u);
  EXPECT_EQ(trace.publication_count(), 50u);

  // Serialize and reload (exercises the full pipeline).
  std::stringstream ss;
  trace.save(ss);
  const auto loaded = Trace::load(ss);
  ASSERT_TRUE(loaded.has_value());

  // Replay into an identically configured fresh system.
  pubsub::PubSubSystem replay_system(replay_config(), schema);
  TraceReplayer replayer(replay_system, *loaded);
  replayer.start();
  replay_system.quiesce();

  EXPECT_EQ(replayer.replayed(), trace.size());
  EXPECT_EQ(replayer.skipped(), 0u);
  EXPECT_EQ(replay_system.notifications_delivered(),
            recorded_notifications);
  EXPECT_EQ(replay_system.traffic().total_hops(), recorded_hops);
}

TEST(TraceReplayTest, ReplayAgainstDifferentTransportStillDelivers) {
  const pubsub::Schema schema = pubsub::Schema::uniform(3, 9'999);
  Trace trace;
  std::uint64_t recorded_notifications = 0;
  {
    pubsub::PubSubSystem system(replay_config(), schema);
    WorkloadParams wp;
    wp.matching_probability = 0.8;
    WorkloadGenerator gen(schema, wp, 6);
    DriverParams dp;
    dp.max_subscriptions = 20;
    dp.max_publications = 40;
    Driver driver(system, gen, dp, nullptr, &trace);
    driver.start();
    driver.run_to_completion();
    recorded_notifications = system.notifications_delivered();
  }

  // Same trace, m-cast transport and a different mapping: deliveries
  // must be identical (the trace pins the workload; the architecture
  // guarantees the matches).
  pubsub::SystemConfig cfg = replay_config();
  cfg.mapping = pubsub::MappingKind::kAttributeSplit;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.pub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  pubsub::PubSubSystem system(cfg, schema);
  TraceReplayer replayer(system, trace);
  replayer.start();
  system.quiesce();
  EXPECT_EQ(system.notifications_delivered(), recorded_notifications);
}

TEST(TraceReplayTest, OutOfRangeNodesAreSkipped) {
  const pubsub::Schema schema = pubsub::Schema::uniform(1, 99);
  Trace trace;
  TraceOp pub;
  pub.kind = TraceOp::Kind::kPublish;
  pub.at = sim::sec(1);
  pub.node = 9999;  // no such node
  pub.values = {5};
  trace.add(pub);

  pubsub::SystemConfig cfg = replay_config();
  pubsub::PubSubSystem system(cfg, schema);
  TraceReplayer replayer(system, trace);
  replayer.start();
  system.quiesce();
  EXPECT_EQ(replayer.skipped(), 1u);
  EXPECT_EQ(replayer.replayed(), 0u);
}

}  // namespace
}  // namespace cbps::workload
