// White-box unit tests of the CB-pub/sub node against a scripted fake
// overlay: exercises the notification paths (immediate / buffered /
// collect direction), replication chains, state export/import and the
// gossip repair handlers without any real routing. Also unit-tests the
// DeliveryChecker oracle itself.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/gossip.hpp"
#include "cbps/pubsub/node.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::pubsub {
namespace {

// A controllable overlay: records every primitive invocation.
class FakeOverlay final : public overlay::OverlayNode {
 public:
  struct Sent {
    enum class Kind { kSend, kMcast, kChain, kToSucc, kToPred } kind;
    Key key = 0;                 // for kSend
    std::vector<Key> keys;       // for kMcast / kChain
    overlay::PayloadPtr payload;
  };

  FakeOverlay(RingParams ring, Key id, Key pred, Key succ)
      : ring_(ring), id_(id), pred_(pred), succ_(succ) {}

  Key id() const override { return id_; }
  RingParams ring() const override { return ring_; }
  void send(Key key, overlay::PayloadPtr payload) override {
    sent.push_back({Sent::Kind::kSend, key, {}, std::move(payload)});
  }
  void m_cast(std::vector<Key> keys, overlay::PayloadPtr payload) override {
    sent.push_back({Sent::Kind::kMcast, 0, std::move(keys),
                    std::move(payload)});
  }
  void chain_cast(std::vector<Key> keys,
                  overlay::PayloadPtr payload) override {
    sent.push_back({Sent::Kind::kChain, 0, std::move(keys),
                    std::move(payload)});
  }
  void send_to_successor(overlay::PayloadPtr payload) override {
    sent.push_back({Sent::Kind::kToSucc, 0, {}, std::move(payload)});
  }
  void send_to_predecessor(overlay::PayloadPtr payload) override {
    sent.push_back({Sent::Kind::kToPred, 0, {}, std::move(payload)});
  }
  Key successor_id() const override { return succ_; }
  Key predecessor_id() const override { return pred_; }
  void set_app(overlay::OverlayApp* app) override { app_ = app; }

  overlay::OverlayApp* app() const { return app_; }

  std::vector<Sent> sent;

 private:
  RingParams ring_;
  Key id_;
  Key pred_;
  Key succ_;
  overlay::OverlayApp* app_ = nullptr;
};

// Minimal single-attribute world: domain 0..255 on an 8-bit ring, so the
// identity-ish scaling hash makes rendezvous geometry easy to reason
// about.
class PubSubNodeUnitTest : public ::testing::Test {
 protected:
  PubSubNodeUnitTest()
      : schema_({{"a", {0, 255}}}),
        mapping_(make_mapping(MappingKind::kSelectiveAttribute, schema_,
                              RingParams{8})) {}

  std::unique_ptr<PubSubNode> make_node(FakeOverlay& overlay,
                                        PubSubConfig cfg = {}) {
    return std::make_unique<PubSubNode>(overlay, sim_, *mapping_, cfg);
  }

  SubscriptionPtr make_sub(SubscriptionId id, Key subscriber, Value lo,
                           Value hi) {
    auto s = std::make_shared<Subscription>();
    s->id = id;
    s->subscriber = subscriber;
    s->constraints = {{0, {lo, hi}}};
    return s;
  }

  // Deliver a subscription to the node as if routed there.
  void deliver_sub(PubSubNode& node, const SubscriptionPtr& sub,
                   sim::SimTime expiry = sim::kSimTimeNever) {
    const auto ranges = mapping_->subscription_ranges(*sub);
    node.on_deliver(ranges.front().lo,
                    std::make_shared<SubscribeMsg>(sub, expiry, ranges));
  }

  void deliver_pub(PubSubNode& node, Key key, Value value, EventId id) {
    auto e = std::make_shared<Event>();
    e->id = id;
    e->values = {value};
    node.on_deliver(key, std::make_shared<PublishMsg>(std::move(e), 0,
                                                      sim_.now()));
  }

  sim::Simulator sim_;
  Schema schema_;
  std::unique_ptr<AkMapping> mapping_;
};

TEST_F(PubSubNodeUnitTest, ImmediateNotificationGoesStraightOut) {
  FakeOverlay overlay(RingParams{8}, /*id=*/100, /*pred=*/50, /*succ=*/150);
  auto node = make_node(overlay);
  const auto sub = make_sub(1, /*subscriber=*/200, 60, 100);
  deliver_sub(*node, sub);
  deliver_pub(*node, mapping_->event_keys(Event{1, {80}}).front(), 80, 1);

  ASSERT_EQ(overlay.sent.size(), 1u);
  EXPECT_EQ(overlay.sent[0].kind, FakeOverlay::Sent::Kind::kSend);
  EXPECT_EQ(overlay.sent[0].key, 200u);  // routed to the subscriber key
  const auto* notify =
      dynamic_cast<const NotifyMsg*>(overlay.sent[0].payload.get());
  ASSERT_NE(notify, nullptr);
  ASSERT_EQ(notify->batch.size(), 1u);
  EXPECT_EQ(notify->batch[0].subscription, 1u);
}

TEST_F(PubSubNodeUnitTest, BufferingBatchesBySubscriber) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.buffering = true;
  cfg.buffer_period = sim::sec(5);
  auto node = make_node(overlay, cfg);
  deliver_sub(*node, make_sub(1, 200, 60, 100));
  deliver_sub(*node, make_sub(2, 210, 60, 100));

  for (EventId i = 1; i <= 3; ++i) {
    // Domain 0..255 on a 2^8 ring: h is the identity, so the event key
    // equals the attribute value.
    deliver_pub(*node, static_cast<Key>(60 + i), static_cast<Value>(60 + i),
                i);
  }
  EXPECT_TRUE(overlay.sent.empty());  // still buffered
  sim_.run();

  // One batch per subscriber, three notifications each.
  ASSERT_EQ(overlay.sent.size(), 2u);
  for (const auto& s : overlay.sent) {
    const auto* notify = dynamic_cast<const NotifyMsg*>(s.payload.get());
    ASSERT_NE(notify, nullptr);
    EXPECT_EQ(notify->batch.size(), 3u);
  }
  EXPECT_EQ(node->notify_batches_sent(), 2u);
  EXPECT_EQ(node->notifications_sent(), 6u);
}

TEST_F(PubSubNodeUnitTest, CollectingForwardsTowardAgent) {
  // Subscription range [0, 200] on the key ring; its agent is the node
  // covering key 100. Our node covers (0, 40]: it sits before the
  // midpoint, so collect traffic must flow to the successor.
  FakeOverlay overlay(RingParams{8}, /*id=*/40, /*pred=*/0, /*succ=*/80);
  PubSubConfig cfg;
  cfg.collecting = true;
  cfg.buffer_period = sim::sec(2);
  auto node = make_node(overlay, cfg);

  const auto sub = make_sub(1, 220, 0, 200);  // SK covers keys 0..200
  deliver_sub(*node, sub);
  deliver_pub(*node, 30, 30, 1);
  sim_.run();

  ASSERT_EQ(overlay.sent.size(), 1u);
  EXPECT_EQ(overlay.sent[0].kind, FakeOverlay::Sent::Kind::kToSucc);
  const auto* collect =
      dynamic_cast<const CollectMsg*>(overlay.sent[0].payload.get());
  ASSERT_NE(collect, nullptr);
  ASSERT_EQ(collect->items.size(), 1u);
  EXPECT_EQ(collect->items[0].subscriber, 220u);
}

TEST_F(PubSubNodeUnitTest, CollectingAfterAgentFlowsBackward) {
  // Node covering (150, 180] is past the midpoint 100: collect traffic
  // must flow to the predecessor.
  FakeOverlay overlay(RingParams{8}, /*id=*/180, /*pred=*/150, /*succ=*/210);
  PubSubConfig cfg;
  cfg.collecting = true;
  cfg.buffer_period = sim::sec(2);
  auto node = make_node(overlay, cfg);
  deliver_sub(*node, make_sub(1, 220, 0, 200));
  deliver_pub(*node, 160, 160, 1);
  sim_.run();
  ASSERT_EQ(overlay.sent.size(), 1u);
  EXPECT_EQ(overlay.sent[0].kind, FakeOverlay::Sent::Kind::kToPred);
}

TEST_F(PubSubNodeUnitTest, AgentSendsBatchToSubscriber) {
  // Node covering (90, 120] contains the midpoint 100: it is the agent
  // and must notify the subscriber directly (as a routed batch).
  FakeOverlay overlay(RingParams{8}, /*id=*/120, /*pred=*/90, /*succ=*/140);
  PubSubConfig cfg;
  cfg.collecting = true;
  cfg.buffer_period = sim::sec(2);
  auto node = make_node(overlay, cfg);
  deliver_sub(*node, make_sub(1, 220, 0, 200));
  deliver_pub(*node, 100, 100, 1);

  // Also receive a collect item from a neighbor for the same range.
  auto e2 = std::make_shared<Event>();
  e2->id = 2;
  e2->values = {95};
  node->on_deliver(
      120, std::make_shared<CollectMsg>(std::vector<CollectItem>{
               {KeyRange{0, 200}, 220, Notification{e2, 1}}}));
  sim_.run();

  ASSERT_EQ(overlay.sent.size(), 1u);
  EXPECT_EQ(overlay.sent[0].kind, FakeOverlay::Sent::Kind::kSend);
  EXPECT_EQ(overlay.sent[0].key, 220u);
  const auto* notify =
      dynamic_cast<const NotifyMsg*>(overlay.sent[0].payload.get());
  ASSERT_NE(notify, nullptr);
  EXPECT_EQ(notify->batch.size(), 2u);  // own match + collected item
}

TEST_F(PubSubNodeUnitTest, ReplicationChainsAlongSuccessors) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.replication_factor = 3;
  auto node = make_node(overlay, cfg);
  deliver_sub(*node, make_sub(1, 200, 60, 100));

  ASSERT_EQ(overlay.sent.size(), 1u);
  const auto* rep =
      dynamic_cast<const ReplicaMsg*>(overlay.sent[0].payload.get());
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->remaining_hops, 3u);
  EXPECT_FALSE(rep->record.replica);

  // Receiving a replica with remaining hops forwards a decremented copy.
  // Copy before clear(): `rep` points into the payload that clear() frees.
  auto replica = std::make_shared<ReplicaMsg>(*rep);
  overlay.sent.clear();
  node->on_deliver(100, std::move(replica));
  ASSERT_EQ(overlay.sent.size(), 1u);
  const auto* fwd =
      dynamic_cast<const ReplicaMsg*>(overlay.sent[0].payload.get());
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->remaining_hops, 2u);
  EXPECT_EQ(node->store().size(), 1u);  // the sub was already owned here
}

TEST_F(PubSubNodeUnitTest, ExportStateSplitsByRange) {
  FakeOverlay overlay(RingParams{8}, 100, 20, 150);
  auto node = make_node(overlay);
  deliver_sub(*node, make_sub(1, 200, 30, 40));   // keys ~30..40
  deliver_sub(*node, make_sub(2, 200, 80, 95));   // keys ~80..95
  ASSERT_EQ(node->store().owned_size(), 2u);

  // Hand away (20, 60]: only sub 1's range intersects.
  const auto st = node->export_state(20, 60, /*remove=*/true);
  const auto* msg = dynamic_cast<const StateMsg*>(st.get());
  ASSERT_NE(msg, nullptr);
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].sub->id, 1u);
  EXPECT_EQ(node->store().owned_size(), 1u);  // sub 1 dropped
  EXPECT_NE(node->store().find(2), nullptr);
}

TEST_F(PubSubNodeUnitTest, ImportStateRestoresRecords) {
  FakeOverlay a(RingParams{8}, 100, 20, 150);
  FakeOverlay b(RingParams{8}, 60, 20, 100);
  auto exporter = make_node(a);
  auto importer = make_node(b);
  deliver_sub(*exporter, make_sub(1, 200, 30, 40));
  const auto st = exporter->export_state(20, 60, true);
  importer->import_state(st);
  EXPECT_EQ(importer->store().owned_size(), 1u);
  EXPECT_NE(importer->store().find(1), nullptr);
}

TEST_F(PubSubNodeUnitTest, UnsubscribeUsesSameKeysAsSubscribe) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.sub_transport = PubSubConfig::Transport::kMulticast;
  auto node = make_node(overlay, cfg);
  auto sub = make_sub(1, 100, 60, 100);
  node->subscribe(sub);
  node->unsubscribe(1);
  ASSERT_EQ(overlay.sent.size(), 2u);
  EXPECT_EQ(overlay.sent[0].kind, FakeOverlay::Sent::Kind::kMcast);
  EXPECT_EQ(overlay.sent[1].kind, FakeOverlay::Sent::Kind::kMcast);
  EXPECT_EQ(overlay.sent[0].keys, overlay.sent[1].keys);
}

TEST_F(PubSubNodeUnitTest, UnknownUnsubscribeIsNoOp) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  auto node = make_node(overlay);
  node->unsubscribe(999);
  EXPECT_TRUE(overlay.sent.empty());
}

// ---------------------------------------------------------------------------
// Gossip repair handlers (anti-entropy rendezvous-state legs)
// ---------------------------------------------------------------------------

TEST_F(PubSubNodeUnitTest, GossipSubRepairLearnsOwnedRecordAndReplicates) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.dissemination = PubSubConfig::Dissemination::kGossip;
  cfg.replication_factor = 2;
  auto node = make_node(overlay, cfg);

  const auto sub = make_sub(1, 200, 0, 255);
  auto repair = std::make_shared<GossipSubRepairMsg>(/*target=*/100);
  repair->records.push_back({sub, sim::kSimTimeNever,
                             mapping_->subscription_ranges(*sub),
                             /*replica=*/false});
  node->on_deliver(100, repair);

  const auto* rec = node->store().find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->replica);  // learned as owned, not as a backup copy
  EXPECT_EQ(node->gossip_stats().subs_learned, 1u);

  // Learning the record rebuilds its replica chain immediately...
  ASSERT_EQ(overlay.sent.size(), 1u);
  const auto* rep =
      dynamic_cast<const ReplicaMsg*>(overlay.sent[0].payload.get());
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->remaining_hops, 2u);
  EXPECT_EQ(rep->record.sub->id, 1u);

  // ...and re_replicate refreshes it like any other owned record, so a
  // post-heal sweep also re-homes gossip-learned state.
  overlay.sent.clear();
  EXPECT_EQ(node->re_replicate(), 1u);
  ASSERT_EQ(overlay.sent.size(), 1u);
  EXPECT_NE(dynamic_cast<const ReplicaMsg*>(overlay.sent[0].payload.get()),
            nullptr);
}

TEST_F(PubSubNodeUnitTest, GossipSubRepairUpgradesAReplicaToOwned) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.dissemination = PubSubConfig::Dissemination::kGossip;
  cfg.replication_factor = 2;
  auto node = make_node(overlay, cfg);

  const auto sub = make_sub(1, 200, 0, 255);
  const auto ranges = mapping_->subscription_ranges(*sub);
  // Held as a neighbor's backup first (terminal hop: nothing forwarded).
  node->on_deliver(100, std::make_shared<ReplicaMsg>(
                            StoredSubRecord{sub, sim::kSimTimeNever, ranges},
                            /*hops=*/1));
  ASSERT_TRUE(node->store().find(1)->replica);
  overlay.sent.clear();

  auto repair = std::make_shared<GossipSubRepairMsg>(/*target=*/100);
  repair->records.push_back({sub, sim::kSimTimeNever, ranges, false});
  node->on_deliver(100, repair);

  EXPECT_FALSE(node->store().find(1)->replica);
  EXPECT_EQ(node->gossip_stats().subs_learned, 1u);
  ASSERT_EQ(overlay.sent.size(), 1u);  // fresh ownership, fresh chain
  EXPECT_NE(dynamic_cast<const ReplicaMsg*>(overlay.sent[0].payload.get()),
            nullptr);
}

TEST_F(PubSubNodeUnitTest, GossipSubRepairForAnotherTargetIsGhostDropped) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.dissemination = PubSubConfig::Dissemination::kGossip;
  auto node = make_node(overlay, cfg);
  const auto sub = make_sub(1, 200, 0, 255);
  auto repair = std::make_shared<GossipSubRepairMsg>(/*target=*/130);
  repair->records.push_back({sub, sim::kSimTimeNever,
                             mapping_->subscription_ranges(*sub), false});
  node->on_deliver(100, repair);  // key-routed here, addressed elsewhere
  EXPECT_EQ(node->store().find(1), nullptr);
  EXPECT_EQ(node->gossip_stats().misdirected, 1u);
}

TEST_F(PubSubNodeUnitTest, ReplicaRecordsAreNeverAdvertisedOrRepaired) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.dissemination = PubSubConfig::Dissemination::kGossip;
  auto node = make_node(overlay, cfg);

  // A replica-held record whose range covers the digesting peer: if the
  // replica guard were missing, the node would push it as repair and
  // every chain member would act like an owner.
  const auto backup = make_sub(1, 210, 0, 255);
  node->on_deliver(
      100, std::make_shared<ReplicaMsg>(
               StoredSubRecord{backup, sim::kSimTimeNever,
                               mapping_->subscription_ranges(*backup)},
               /*hops=*/1));
  overlay.sent.clear();

  node->on_deliver(100, std::make_shared<GossipDigestMsg>(
                            /*from=*/200, /*target=*/100, /*reply=*/false));

  // Only the return digest goes out — no sub repair for the replica, and
  // the digest advertises nothing.
  ASSERT_EQ(overlay.sent.size(), 1u);
  const auto* digest =
      dynamic_cast<const GossipDigestMsg*>(overlay.sent[0].payload.get());
  ASSERT_NE(digest, nullptr);
  EXPECT_TRUE(digest->reply);
  EXPECT_TRUE(digest->subs.empty());

  // Contrast: an owned record with the same coverage is both pushed as
  // repair and advertised in the return digest.
  const auto owned = make_sub(2, 210, 0, 255);
  deliver_sub(*node, owned);
  overlay.sent.clear();
  node->on_deliver(100, std::make_shared<GossipDigestMsg>(
                            /*from=*/200, /*target=*/100, /*reply=*/false));

  const GossipSubRepairMsg* repair = nullptr;
  const GossipDigestMsg* reply = nullptr;
  for (const auto& s : overlay.sent) {
    if (const auto* r =
            dynamic_cast<const GossipSubRepairMsg*>(s.payload.get())) {
      repair = r;
    }
    if (const auto* d =
            dynamic_cast<const GossipDigestMsg*>(s.payload.get())) {
      reply = d;
    }
  }
  ASSERT_NE(repair, nullptr);
  ASSERT_EQ(repair->records.size(), 1u);
  EXPECT_EQ(repair->records[0].sub->id, 2u);  // the owned one, only
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(reply->subs.size(), 1u);
  EXPECT_EQ(reply->subs[0].id, 2u);
}

// Regression (duplicate-delivery accounting): the same NotifyMsg
// replayed at a node — the overlay's ack/retry layer can do exactly that
// — must surface to the application and the oracle once.
TEST_F(PubSubNodeUnitTest, ReplayedNotifyMsgSurfacesOnce) {
  FakeOverlay overlay(RingParams{8}, 100, 50, 150);
  PubSubConfig cfg;
  cfg.duplicate_suppression = true;
  auto node = make_node(overlay, cfg);

  DeliveryChecker checker;
  const auto sub = make_sub(1, /*subscriber=*/100, 0, 100);
  checker.on_subscribe(sub, sim::sec(0), sim::kSimTimeNever);
  int sink_calls = 0;
  node->set_notify_sink([&](Key s, const Notification& n) {
    ++sink_calls;
    checker.on_notify(s, n, sim_.now());
  });

  auto e = std::make_shared<Event>();
  e->id = 1;
  e->values = {50};
  checker.on_publish(e, sim::sec(100));
  const auto notify = std::make_shared<NotifyMsg>(
      /*subscriber=*/100, std::vector<Notification>{{e, 1, sim::sec(100)}});
  node->on_deliver(100, notify);
  node->on_deliver(100, std::make_shared<NotifyMsg>(*notify));  // replay

  EXPECT_EQ(sink_calls, 1);
  EXPECT_EQ(node->notifications_received(), 1u);
  EXPECT_EQ(node->duplicates_suppressed(), 1u);
  const auto report = checker.verify();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.duplicates, 0u);
}

// ---------------------------------------------------------------------------
// DeliveryChecker oracle self-tests
// ---------------------------------------------------------------------------

class DeliveryCheckerTest : public ::testing::Test {
 protected:
  SubscriptionPtr sub(SubscriptionId id, Value lo, Value hi) {
    auto s = std::make_shared<Subscription>();
    s->id = id;
    s->subscriber = 42;
    s->constraints = {{0, {lo, hi}}};
    return s;
  }
  EventPtr event(EventId id, Value v) {
    auto e = std::make_shared<Event>();
    e->id = id;
    e->values = {v};
    return e;
  }
};

TEST_F(DeliveryCheckerTest, DetectsMissingDelivery) {
  DeliveryChecker checker;
  checker.on_subscribe(sub(1, 0, 100), sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(event(1, 50), sim::sec(100));
  const auto report = checker.verify();
  EXPECT_EQ(report.expected, 1u);
  EXPECT_EQ(report.missing, 1u);
  EXPECT_FALSE(report.ok());
}

TEST_F(DeliveryCheckerTest, AcceptsCorrectDelivery) {
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(100));
  checker.on_notify(42, Notification{e, 1}, sim::sec(101));
  const auto report = checker.verify();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.delivered, 1u);
}

TEST_F(DeliveryCheckerTest, DetectsDuplicates) {
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(100));
  checker.on_notify(42, Notification{e, 1}, sim::sec(101));
  checker.on_notify(42, Notification{e, 1}, sim::sec(102));
  EXPECT_EQ(checker.verify().duplicates, 1u);
}

TEST_F(DeliveryCheckerTest, DetectsSpuriousDelivery) {
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 200);  // does not match
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(100));
  checker.on_notify(42, Notification{e, 1}, sim::sec(101));
  EXPECT_EQ(checker.verify().spurious, 1u);
}

TEST_F(DeliveryCheckerTest, DetectsWrongSubscriber) {
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(100));
  checker.on_notify(/*subscriber=*/7, Notification{e, 1}, sim::sec(101));
  EXPECT_EQ(checker.verify().wrong_subscriber, 1u);
}

TEST_F(DeliveryCheckerTest, DuplicateAtTheSameNodeIsOnlyADuplicate) {
  // A replayed notification at the right node: the pair counts once as
  // delivered, the extra copy as a duplicate — never as wrong-subscriber.
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(100));
  checker.on_notify(42, Notification{e, 1}, sim::sec(101));
  checker.on_notify(42, Notification{e, 1}, sim::sec(102));
  const auto report = checker.verify();
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.duplicates, 1u);
  EXPECT_EQ(report.wrong_subscriber, 0u);
}

TEST_F(DeliveryCheckerTest, LateDuplicateCannotMaskAWrongFirstDelivery) {
  // Regression: the oracle used to overwrite the recorded subscriber on
  // every notify, so a ghost delivery at node 7 followed by a correct
  // duplicate at node 42 looked clean. The first delivery's identity is
  // authoritative now.
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(100));
  checker.on_notify(/*subscriber=*/7, Notification{e, 1}, sim::sec(101));
  checker.on_notify(/*subscriber=*/42, Notification{e, 1}, sim::sec(102));
  EXPECT_EQ(checker.verify().wrong_subscriber, 1u);
}

TEST_F(DeliveryCheckerTest, DuplicateAtAnotherNodeFlagsTheMismatch) {
  // Symmetric case: correct first delivery, duplicate surfacing at a
  // different node. The mismatch flag catches it even though the
  // recorded (first) subscriber is the right one.
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(100));
  checker.on_notify(/*subscriber=*/42, Notification{e, 1}, sim::sec(101));
  checker.on_notify(/*subscriber=*/7, Notification{e, 1}, sim::sec(102));
  EXPECT_EQ(checker.verify().wrong_subscriber, 1u);
}

TEST_F(DeliveryCheckerTest, GraceWindowExemptsBoundaryPublishes) {
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  checker.on_subscribe(s, sim::sec(100), sim::kSimTimeNever);
  // Published 1 s after subscribing: within the grace window.
  checker.on_publish(event(1, 50), sim::sec(101));
  const auto report = checker.verify(/*grace=*/sim::sec(2));
  EXPECT_EQ(report.expected, 0u);
  EXPECT_TRUE(report.ok());
}

TEST_F(DeliveryCheckerTest, SubscribeGraceBoundaryIsInclusive) {
  // A publish at exactly subscribed_at + grace is clearly active (the
  // window is closed on this edge); one microtick earlier is still in
  // the grace region and demands nothing.
  DeliveryChecker checker;
  checker.on_subscribe(sub(1, 0, 100), sim::sec(100), sim::kSimTimeNever);
  checker.on_publish(event(1, 50), sim::sec(102));      // == +grace
  checker.on_publish(event(2, 50), sim::sec(102) - 1);  // just inside grace
  const auto report = checker.verify(/*grace=*/sim::sec(2));
  EXPECT_EQ(report.expected, 1u);  // only event 1
  EXPECT_EQ(report.missing, 1u);
}

TEST_F(DeliveryCheckerTest, UnsubscribeGraceBoundaryIsInclusive) {
  // Symmetric at the tail: a publish whose grace window ends exactly at
  // the unsubscribe time is still clearly active; one microtick later
  // the window straddles the boundary and the publish is exempt.
  DeliveryChecker checker;
  checker.on_subscribe(sub(1, 0, 100), sim::sec(0), sim::kSimTimeNever);
  checker.on_unsubscribe(1, sim::sec(100));
  checker.on_publish(event(1, 50), sim::sec(98));      // 98 + 2 == 100
  checker.on_publish(event(2, 50), sim::sec(98) + 1);  // straddles the end
  const auto report = checker.verify(/*grace=*/sim::sec(2));
  EXPECT_EQ(report.expected, 1u);  // only event 1
  EXPECT_EQ(report.missing, 1u);
}

TEST_F(DeliveryCheckerTest, ExpiryActsLikeUnsubscribeForGrace) {
  DeliveryChecker checker;
  checker.on_subscribe(sub(1, 0, 100), sim::sec(0),
                       /*expires_at=*/sim::sec(100));
  checker.on_publish(event(1, 50), sim::sec(98));  // clearly active
  checker.on_publish(event(2, 50), sim::sec(99));  // grace region
  checker.on_publish(event(3, 50), sim::sec(150));  // clearly expired
  const auto report = checker.verify(/*grace=*/sim::sec(2));
  EXPECT_EQ(report.expected, 1u);
  EXPECT_EQ(report.missing, 1u);
}

TEST_F(DeliveryCheckerTest, DeliveryWithinGraceRegionIsTolerated) {
  // In-flight at subscribe time: the delivery may or may not happen,
  // and neither outcome is an error.
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(100), sim::kSimTimeNever);
  checker.on_publish(e, sim::sec(101));  // inside the grace region
  checker.on_notify(42, Notification{e, 1}, sim::sec(103));
  const auto report = checker.verify(/*grace=*/sim::sec(2));
  EXPECT_EQ(report.expected, 0u);
  EXPECT_EQ(report.spurious, 0u);
  EXPECT_TRUE(report.ok());
}

TEST_F(DeliveryCheckerTest, DeliveryAfterUnsubscribeIsNotSpurious) {
  // Matched before the unsubscribe propagated: tolerated, unlike a
  // delivery from before the subscription existed.
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_unsubscribe(1, sim::sec(50));
  checker.on_publish(e, sim::sec(60));
  checker.on_notify(42, Notification{e, 1}, sim::sec(61));
  const auto report = checker.verify();
  EXPECT_EQ(report.expected, 0u);
  EXPECT_EQ(report.spurious, 0u);
  EXPECT_TRUE(report.ok());
}

TEST_F(DeliveryCheckerTest, UnsubscribeEndsActivity) {
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  checker.on_subscribe(s, sim::sec(0), sim::kSimTimeNever);
  checker.on_unsubscribe(1, sim::sec(50));
  checker.on_publish(event(1, 50), sim::sec(60));
  const auto report = checker.verify();
  EXPECT_EQ(report.expected, 0u);
  EXPECT_TRUE(report.ok());
}

TEST_F(DeliveryCheckerTest, DeliveryBeforeSubscribeIsSpurious) {
  DeliveryChecker checker;
  const auto s = sub(1, 0, 100);
  const auto e = event(1, 50);
  checker.on_publish(e, sim::sec(10));
  checker.on_subscribe(s, sim::sec(100), sim::kSimTimeNever);
  checker.on_notify(42, Notification{e, 1}, sim::sec(11));
  EXPECT_GT(checker.verify().spurious, 0u);
}

}  // namespace
}  // namespace cbps::pubsub
