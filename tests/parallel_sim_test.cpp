// Determinism property tests for the epoch-synchronous sharded engine:
// the same seeded workload through the serial engine and through 2/4/8
// shards must produce bit-identical delivery oracles, metrics and
// traces — plus the epoch-boundary regressions for run_until and
// periodic timers, and the zero-lookahead serial fallback.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "cbps/common/exec_context.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/sim/latency.hpp"
#include "cbps/sim/parallel_simulator.hpp"
#include "cbps/sim/simulator.hpp"
#include "cbps/workload/churn.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "harness.hpp"

using namespace cbps;

namespace {

// Everything a run observably produces: the delivery oracle, the
// reliability counters, the latency/hop distributions and the final
// engine state. Two engines agree iff these agree exactly.
struct WorkloadSummary {
  std::uint64_t expected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t spurious = 0;
  std::uint64_t dups_suppressed = 0;
  std::uint64_t lost = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t send_failed = 0;
  std::uint64_t total_hops = 0;
  double delay_p50 = 0;
  double delay_p99 = 0;
  double hops_p50 = 0;
  double hops_p99 = 0;
  std::uint64_t sim_events = 0;
  sim::SimTime final_now = 0;
  // Gossip-backend counters (all 0 on the unicast backend).
  std::uint64_t gossip_pushes = 0;
  std::uint64_t gossip_duplicates = 0;
  std::uint64_t gossip_digests = 0;
  std::uint64_t gossip_repairs = 0;
  std::uint64_t gossip_subs_learned = 0;

  bool operator==(const WorkloadSummary&) const = default;
};

// A pub/sub run with everything turned on at once: lossy wire via a
// fault script, a mid-run partition, Poisson churn with crashes, the
// reliable transport and the end-to-end duplicate filter.
WorkloadSummary run_workload(std::size_t sim_threads,
                             pubsub::PubSubConfig::Dissemination dissemination =
                                 pubsub::PubSubConfig::Dissemination::kUnicast) {
  std::string error;
  const auto script = workload::FaultScript::parse(
      "loss at=0 model=uniform rate=0.02; "
      "partition at=200 heal=400 frac=0.3",
      &error);
  EXPECT_TRUE(script.has_value()) << error;

  pubsub::SystemConfig cfg;
  cfg.nodes = 48;
  cfg.seed = 1234;
  cfg.chord.ring = RingParams{12};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.chord.force_reliable = script->needs_reliable_transport();
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.dissemination = dissemination;
  cfg.sim_threads = sim_threads;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 9'999));
  EXPECT_EQ(system.sim().thread_count(),
            static_cast<unsigned>(sim_threads));
  system.network().start_maintenance_all();

  workload::FaultScriptRunner fault_runner(system, *script, cfg.seed);
  fault_runner.start();

  pubsub::DeliveryChecker checker;
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 17);
  workload::DriverParams dp;
  dp.max_subscriptions = 40;
  dp.max_publications = 150;
  dp.sub_interval = sim::sec(5);
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  workload::ChurnParams cp;
  cp.mean_interval_s = 60.0;
  cp.join_fraction = 0.4;
  cp.crash_fraction = 0.5;
  cp.min_nodes = 32;
  workload::ChurnDriver churn(system, cp, 99, [&driver](Key id) {
    for (const auto& sub : driver.active_subscriptions()) {
      if (sub->subscriber == id) return true;
    }
    return false;
  });
  churn.set_delivery_checker(&checker);
  churn.start();

  system.run_for(sim::sec(900));
  churn.stop();
  system.run_for(sim::sec(120));

  const auto report = checker.verify(/*grace=*/sim::sec(10));
  metrics::Registry& reg = system.network().registry();
  WorkloadSummary s;
  s.expected = report.expected;
  s.delivered = report.delivered;
  s.missing = report.missing;
  s.duplicates = report.duplicates;
  s.spurious = report.spurious;
  s.dups_suppressed = system.duplicates_suppressed();
  s.lost = reg.counter_value("chord.net.lost");
  s.retransmits = reg.counter_value("chord.retransmits");
  s.send_failed = reg.counter_value("chord.send_failed");
  for (std::size_t c = 0; c < overlay::kMessageClassCount; ++c) {
    s.total_hops +=
        system.traffic().hops(static_cast<overlay::MessageClass>(c));
  }
  const metrics::Histogram delay = system.delay_histogram();
  s.delay_p50 = delay.p50();
  s.delay_p99 = delay.p99();
  s.hops_p50 = reg.histogram("chord.route_hops").p50();
  s.hops_p99 = reg.histogram("chord.route_hops").p99();
  s.sim_events = system.sim().events_processed();
  s.final_now = system.sim().now();
  const pubsub::PubSubNode::GossipStats gs = system.gossip_stats();
  s.gossip_pushes = gs.pushes_sent;
  s.gossip_duplicates = gs.duplicates;
  s.gossip_digests = gs.digests_sent;
  s.gossip_repairs = gs.repair_records;
  s.gossip_subs_learned = gs.subs_learned;
  return s;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ParallelWorkloadTest, ChurnFaultWorkloadIdenticalAcrossShardCounts) {
  const WorkloadSummary serial = run_workload(1);
  // The oracle itself must show a live run, or equality proves nothing.
  EXPECT_GT(serial.expected, 0u);
  EXPECT_GT(serial.retransmits, 0u);
  for (const std::size_t threads : {2, 4, 8}) {
    const WorkloadSummary sharded = run_workload(threads);
    EXPECT_EQ(serial, sharded) << "divergence at " << threads << " shards";
  }
}

// The gossip backend adds per-node RNG streams (peer sampling) and the
// anti-entropy timer to the mix; the epidemic must still be bit-identical
// serial vs sharded — traces, oracles and every protocol counter.
TEST(ParallelWorkloadTest, GossipBackendIdenticalAcrossShardCounts) {
  constexpr auto kGossip = pubsub::PubSubConfig::Dissemination::kGossip;
  const WorkloadSummary serial = run_workload(1, kGossip);
  EXPECT_GT(serial.expected, 0u);
  EXPECT_GT(serial.gossip_pushes, 0u);
  EXPECT_GT(serial.gossip_digests, 0u);
  for (const std::size_t threads : {2, 8}) {
    const WorkloadSummary sharded = run_workload(threads, kGossip);
    EXPECT_EQ(serial, sharded) << "divergence at " << threads << " shards";
  }
}

TEST(ParallelWorkloadTest, ExperimentTraceAndResultBitIdentical) {
  auto run = [](std::size_t threads, const std::string& trace) {
    bench::ExperimentConfig cfg;
    cfg.nodes = 120;
    cfg.subscriptions = 150;
    cfg.publications = 150;
    cfg.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
    cfg.verify = true;
    cfg.trace_path = trace;
    cfg.sim_threads = threads;
    return bench::run_experiment(cfg);
  };
  const std::string t1 = testing::TempDir() + "par_sim_t1.jsonl";
  const std::string t4 = testing::TempDir() + "par_sim_t4.jsonl";
  const bench::ExperimentResult a = run(1, t1);
  const bench::ExperimentResult b = run(4, t4);

  EXPECT_EQ(a.sim_threads, 1u);
  EXPECT_EQ(b.sim_threads, 4u);
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
  EXPECT_GT(a.notifications_delivered, 0u);
  EXPECT_EQ(a.notifications_delivered, b.notifications_delivered);
  EXPECT_EQ(a.subscribe_hops, b.subscribe_hops);
  EXPECT_EQ(a.publish_hops, b.publish_hops);
  EXPECT_EQ(a.notify_hops, b.notify_hops);
  EXPECT_EQ(a.max_subs_per_node, b.max_subs_per_node);
  EXPECT_EQ(a.expected_deliveries, b.expected_deliveries);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.trace_spans, b.trace_spans);
  // Doubles too: bit-identical, not just close.
  EXPECT_EQ(a.avg_notification_delay_s, b.avg_notification_delay_s);
  EXPECT_EQ(a.delay_p99_s, b.delay_p99_s);
  EXPECT_EQ(a.hops_p99, b.hops_p99);

  const std::string trace_a = slurp(t1);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, slurp(t4));
  std::remove(t1.c_str());
  std::remove(t4.c_str());
}

TEST(ParallelWorkloadTest, ZeroDelayModelFallsBackToSerial) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 8;
  cfg.message_delay = 0;  // lookahead would be 0 — engine must go serial
  cfg.sim_threads = 4;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(2, 99));
  EXPECT_EQ(system.sim().thread_count(), 1u);
}

TEST(ParallelWorkloadTest, LatencyModelsReportMinDelay) {
  Rng rng(1);
  sim::FixedLatency fixed(sim::ms(50));
  EXPECT_EQ(fixed.min_delay(), sim::ms(50));
  sim::UniformLatency uni(sim::ms(10), sim::ms(90));
  EXPECT_EQ(uni.min_delay(), sim::ms(10));
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(uni.sample(rng), uni.min_delay());
  }
  // An unbounded model keeps the base default, the serial-fallback
  // sentinel.
  struct Unbounded final : sim::LatencyModel {
    sim::SimTime sample(Rng&) override { return sim::ms(1); }
  } unbounded;
  EXPECT_EQ(unbounded.min_delay(), 0);
}

// Regression (satellite bugfix): a periodic timer whose ticks land
// exactly on epoch boundaries, driven by run_until calls that also land
// exactly on epoch boundaries. Every tick must fire exactly once —
// whether it sits on the global core or on a shard — and a repeated
// run_until at the same boundary must not re-fire it.
TEST(EpochBoundaryTest, RunUntilPeriodicTimerAtExactBoundary) {
  const sim::SimTime period = sim::ms(50);  // == the engine lookahead
  auto drive = [&](sim::SimulatorBase& sim) {
    std::vector<sim::SimTime> global_fires;
    std::vector<sim::SimTime> shard_fires;
    sim.add_timer(period,
                  [&global_fires, &sim] { global_fires.push_back(sim.now()); });
    const common::Domain d = sim.register_domain();
    {
      const common::ActorScope as(d);
      sim.add_timer(period,
                    [&shard_fires, &sim] { shard_fires.push_back(sim.now()); });
    }
    sim.run_until(sim::ms(500));
    const std::size_t global_at_500 = global_fires.size();
    const std::size_t shard_at_500 = shard_fires.size();
    sim.run_until(sim::ms(500));  // same boundary again: no re-fire
    EXPECT_EQ(global_fires.size(), global_at_500);
    EXPECT_EQ(shard_fires.size(), shard_at_500);
    sim.run_until(sim::ms(1000));
    EXPECT_EQ(sim.now(), sim::ms(1000));
    global_fires.insert(global_fires.end(), shard_fires.begin(),
                        shard_fires.end());
    return global_fires;
  };

  sim::Simulator serial;
  const auto expected = drive(serial);
  // run_until is inclusive: ticks at 50, 100, ..., 1000 → 20 per timer.
  ASSERT_EQ(expected.size(), 40u);
  EXPECT_EQ(expected.front(), period);
  EXPECT_EQ(expected[19], sim::ms(1000));

  for (const unsigned threads : {2u, 4u, 8u}) {
    sim::ParallelSimulator par(threads, period);
    EXPECT_EQ(drive(par), expected) << threads << " threads";
  }
}

// One-shot events scheduled exactly at the run_until boundary and one
// tick past it: the boundary event fires, the later one stays pending.
TEST(EpochBoundaryTest, BoundaryEventFiresLaterEventStaysPending) {
  auto drive = [](sim::SimulatorBase& sim) {
    int at_boundary = 0;
    int past_boundary = 0;
    const common::Domain d = sim.register_domain();
    {
      const common::ActorScope as(d);
      sim.schedule_at(sim::ms(200), [&at_boundary] { ++at_boundary; });
      sim.schedule_at(sim::ms(200) + 1, [&past_boundary] { ++past_boundary; });
    }
    sim.run_until(sim::ms(200));
    EXPECT_EQ(at_boundary, 1);
    EXPECT_EQ(past_boundary, 0);
    sim.run();
    EXPECT_EQ(past_boundary, 1);
  };
  sim::Simulator serial;
  drive(serial);
  sim::ParallelSimulator par(4, sim::ms(50));
  drive(par);
}

}  // namespace
