// Tests for the observability layer: the log-linear histogram, the
// metrics registry's cached handles and sorted dump, causal-trace
// integrity (parents exist and precede children; publish traces
// terminate consistently with the DeliveryChecker oracle; traces are
// bit-identical across sweep worker counts), the time-series sampler,
// and the logger's sim-time/node context plus recent-lines ring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cbps/common/logging.hpp"
#include "cbps/metrics/histogram.hpp"
#include "cbps/metrics/registry.hpp"
#include "cbps/metrics/timeseries.hpp"
#include "cbps/metrics/trace.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/generator.hpp"
#include "sweep.hpp"

namespace cbps {
namespace {

using metrics::Histogram;
using metrics::Span;
using metrics::SpanKind;
using metrics::TraceRef;
using metrics::TraceSink;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, PercentilesBracketUniformRange) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Relative quantization error is bounded by 1/kSubBuckets.
  const double tol = 1.0 / Histogram::kSubBuckets;
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * tol);
  EXPECT_NEAR(h.p90(), 900.0, 900.0 * tol);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * tol);
  EXPECT_LE(h.percentile(100.0), h.max());
  EXPECT_GE(h.percentile(0.0), h.min());
}

TEST(HistogramTest, MergeMatchesCombinedAdds) {
  Histogram a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double v = 0.001 * static_cast<double>(i * i + 1);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_EQ(a.buckets(), all.buckets());
  EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

TEST(HistogramTest, OrderIndependentAndDeterministic) {
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(1e-6 * static_cast<double>((i * 7919) % 100000 + 1));
  }
  Histogram forward, backward;
  for (double v : values) forward.add(v);
  std::reverse(values.begin(), values.end());
  for (double v : values) backward.add(v);
  EXPECT_EQ(forward.buckets(), backward.buckets());
  EXPECT_DOUBLE_EQ(forward.p50(), backward.p50());
}

TEST(HistogramTest, ClampsExtremesAndCountsZeros) {
  Histogram h;
  h.add(0.0);
  h.add(-5.0);
  h.add(1e300);   // far beyond 2^kMaxExp: clamps into the top bucket
  h.add(1e-300);  // far below 2^(kMinExp-1): clamps into the bottom octave
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);  // zero and negative share bucket 0
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.add(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, HandlesStayValidAcrossInsertionsAndReset) {
  metrics::Registry reg;
  metrics::Counter* c = reg.counter_handle("alpha");
  Histogram* h = reg.histogram_handle("beta");
  c->inc(3);
  h->add(1.0);
  // Force rebalancing pressure on the underlying maps.
  for (int i = 0; i < 100; ++i) {
    reg.counter("extra." + std::to_string(i)).inc();
  }
  EXPECT_EQ(c, reg.counter_handle("alpha"));
  EXPECT_EQ(c->value(), 3u);
  reg.reset_all();
  EXPECT_EQ(c->value(), 0u);  // reset in place, not erased
  EXPECT_EQ(h->count(), 0u);
  c->inc();
  EXPECT_EQ(reg.counter_value("alpha"), 1u);
}

TEST(RegistryTest, CounterValueDoesNotCreate) {
  metrics::Registry reg;
  EXPECT_EQ(reg.counter_value("never.touched"), 0u);
  EXPECT_TRUE(reg.counters().empty());
}

TEST(RegistryTest, PrintIsOneDeterministicallySortedTable) {
  metrics::Registry reg;
  reg.counter("zulu").inc();
  reg.stat("mike").add(1.0);
  reg.histogram("alpha").add(2.0);
  reg.counter("echo").inc();
  std::ostringstream os;
  reg.print(os);
  const std::string out = os.str();
  const auto a = out.find("alpha");
  const auto e = out.find("echo");
  const auto m = out.find("mike");
  const auto z = out.find("zulu");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(e, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  // Sorted by name regardless of metric type.
  EXPECT_LT(a, e);
  EXPECT_LT(e, m);
  EXPECT_LT(m, z);
}

// ---------------------------------------------------------------------------
// TraceSink unit behavior
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, CreditSamplingIsDeterministic) {
  // Rate 0.5 accrues half a credit per root: every second root samples,
  // with no RNG draw anywhere (sampling must not perturb the sim).
  TraceSink sink(0.5);
  std::vector<bool> pattern;
  for (int i = 0; i < 10; ++i) pattern.push_back(sink.maybe_start_trace() != 0);
  const std::vector<bool> expect = {false, true, false, true, false,
                                    true,  false, true, false, true};
  EXPECT_EQ(pattern, expect);
  EXPECT_EQ(sink.traces_started(), 5u);

  TraceSink full(1.0);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(full.maybe_start_trace(), i);  // rate 1: every root, ids dense
  }
}

TEST(TraceSinkTest, UnsampledEmitIsNoop) {
  TraceSink sink(1.0);
  EXPECT_EQ(sink.emit(TraceRef{}, SpanKind::kPublish, 1, 0, 0), 0u);
  EXPECT_TRUE(sink.spans().empty());
}

TEST(TraceSinkTest, ExportsOneJsonlLinePerSpan) {
  TraceSink sink(1.0);
  const std::uint64_t t = sink.maybe_start_trace();
  ASSERT_NE(t, 0u);
  TraceRef ref{t, 0};
  ref.parent_span = sink.emit(ref, SpanKind::kPublish, 7, 10, 10, 1, 2);
  sink.emit(ref, SpanKind::kRouteHop, 8, 20, 25);
  std::ostringstream jsonl, chrome;
  sink.write_jsonl(jsonl);
  sink.write_chrome_trace(chrome);
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(jsonl.str());
  while (std::getline(in, line)) lines += !line.empty();
  EXPECT_EQ(lines, sink.spans().size());
  EXPECT_NE(chrome.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.str().find("\"route-hop\""), std::string::npos);
}

TEST(TraceSinkTest, CapsSpansAndCountsDrops) {
  TraceSink sink(1.0);
  sink.set_max_spans(3);
  const TraceRef ref{sink.maybe_start_trace(), 0};
  for (int i = 0; i < 10; ++i) {
    sink.emit(ref, SpanKind::kRouteHop, 1, static_cast<std::uint64_t>(i),
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(sink.spans().size(), 3u);
  EXPECT_EQ(sink.spans_dropped(), 7u);
}

// ---------------------------------------------------------------------------
// Trace integrity against a live system
// ---------------------------------------------------------------------------

struct TracedRun {
  std::vector<Span> spans;
  pubsub::DeliveryChecker::Report report;
  std::uint64_t notifications = 0;
  std::size_t timeseries_rows = 0;
};

TracedRun run_traced(std::uint64_t seed,
                     pubsub::PubSubConfig::Transport transport) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 32;
  cfg.seed = seed;
  cfg.chord.ring = RingParams{10};
  cfg.trace_sample_rate = 1.0;
  cfg.pubsub.sub_transport = transport;
  cfg.pubsub.pub_transport = transport;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(4, 1'000'000));

  pubsub::DeliveryChecker checker;
  workload::WorkloadGenerator gen(system.schema(), {}, seed * 13 + 1);
  workload::DriverParams dp;
  dp.max_subscriptions = 40;
  dp.max_publications = 60;
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  system.start_sampler(sim::sec(5));
  while (!driver.finished()) system.run_for(sim::sec(60));
  system.stop_sampler();
  system.quiesce();

  TracedRun out;
  out.spans = system.trace_sink()->spans();
  out.report = checker.verify();
  out.notifications = system.notifications_delivered();
  out.timeseries_rows = system.timeseries().size();
  return out;
}

TEST(TraceIntegrityTest, ParentsExistAndStartNoLaterThanChildren) {
  const TracedRun run = run_traced(11, pubsub::PubSubConfig::Transport::kMulticast);
  ASSERT_FALSE(run.spans.empty());
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& s : run.spans) by_id[s.span_id] = &s;
  for (const Span& s : run.spans) {
    EXPECT_NE(s.trace_id, 0u);
    EXPECT_LE(s.start_us, s.end_us);
    if (s.parent_span == 0) continue;
    const auto it = by_id.find(s.parent_span);
    ASSERT_NE(it, by_id.end())
        << "span " << s.span_id << " (" << metrics::to_string(s.kind)
        << ") references missing parent " << s.parent_span;
    EXPECT_EQ(it->second->trace_id, s.trace_id);
    EXPECT_LE(it->second->start_us, s.start_us)
        << "parent " << s.parent_span << " starts after child " << s.span_id;
  }
}

TEST(TraceIntegrityTest, PublishTracesTerminateMatchingOracle) {
  for (const auto transport : {pubsub::PubSubConfig::Transport::kUnicast,
                               pubsub::PubSubConfig::Transport::kMulticast}) {
    const TracedRun run = run_traced(23, transport);
    EXPECT_TRUE(run.report.ok()) << "oracle: missing=" << run.report.missing
                                 << " spurious=" << run.report.spurious;
    // Full sampling: one deliver span per notification surfaced.
    std::uint64_t delivers = 0;
    std::map<std::uint64_t, std::map<std::string, int>> kinds_by_trace;
    for (const Span& s : run.spans) {
      delivers += s.kind == SpanKind::kDeliver;
      ++kinds_by_trace[s.trace_id][metrics::to_string(s.kind)];
    }
    EXPECT_EQ(delivers, run.notifications);
    // Every publish trace that routed a notification toward a subscriber
    // terminates in a deliver or a drop (nothing vanishes untraced).
    for (const auto& [trace_id, kinds] : kinds_by_trace) {
      if (!kinds.count("publish")) continue;
      const int routed = (kinds.count("notify") ? kinds.at("notify") : 0) +
                         (kinds.count("buffer") ? kinds.at("buffer") : 0) +
                         (kinds.count("collect") ? kinds.at("collect") : 0);
      const int done = (kinds.count("deliver") ? kinds.at("deliver") : 0) +
                       (kinds.count("drop") ? kinds.at("drop") : 0);
      if (routed > 0) {
        EXPECT_GT(done, 0) << "trace " << trace_id
                           << " routed notifications but never terminated";
      }
    }
  }
}

TEST(TraceIntegrityTest, SamplerRecordsRowsWithFullArity) {
  const TracedRun run = run_traced(31, pubsub::PubSubConfig::Transport::kUnicast);
  EXPECT_GT(run.timeseries_rows, 0u);
}

// The sweep runner hands each worker its own system (and thus its own
// TraceSink); the serialized trace of any sweep point must not depend on
// how many workers ran the sweep.
TEST(TraceIntegrityTest, TracesBitIdenticalAcrossSweepJobs) {
  const std::string dir = ::testing::TempDir();
  const auto trace_file = [&](std::size_t jobs, std::uint64_t seed) {
    return dir + "metrics_test_jobs" + std::to_string(jobs) + "_seed" +
           std::to_string(seed) + ".jsonl";
  };
  const auto run_jobs = [&](std::size_t jobs) {
    bench::Sweep<> sweep("metrics_test");
    bench::SweepOptions opts;
    opts.jobs = jobs;
    sweep.set_options(opts);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      bench::ExperimentConfig cfg;
      cfg.nodes = 32;
      cfg.ring_bits = 10;
      cfg.seed = seed;
      cfg.subscriptions = 25;
      cfg.publications = 25;
      cfg.trace_sample_rate = 1.0;
      cfg.trace_path = trace_file(jobs, seed);
      sweep.add("seed=" + std::to_string(seed), cfg);
    }
    sweep.run();
  };
  run_jobs(1);
  run_jobs(2);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::ifstream a(trace_file(1, seed), std::ios::binary);
    std::ifstream b(trace_file(2, seed), std::ios::binary);
    ASSERT_TRUE(a.good());
    ASSERT_TRUE(b.good());
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_FALSE(sa.str().empty());
    EXPECT_EQ(sa.str(), sb.str()) << "trace for seed " << seed
                                  << " differs between --jobs 1 and 2";
    std::remove(trace_file(1, seed).c_str());
    std::remove(trace_file(2, seed).c_str());
  }
}

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, AppendAndExport) {
  metrics::TimeSeries ts({"a", "b"});  // t_s is implicit, prepended on export
  ts.append(1'000'000, {1.0, 2.0});
  ts.append(2'000'000, {3.0, 4.5});
  EXPECT_EQ(ts.size(), 2u);
  std::ostringstream json, csv;
  ts.write_json(json);
  ts.write_csv(csv);
  EXPECT_NE(json.str().find("\"columns\""), std::string::npos);
  EXPECT_NE(json.str().find("\"rows\""), std::string::npos);
  EXPECT_NE(json.str().find("4.5"), std::string::npos);
  EXPECT_EQ(csv.str().rfind("t_s,a,b", 0), 0u);  // header first
}

// ---------------------------------------------------------------------------
// Logger context + recent-lines ring
// ---------------------------------------------------------------------------

TEST(LoggerContextTest, RingKeepsLinesBelowConsoleLevel) {
  Logger& log = Logger::instance();
  log.clear_recent();
  // Console at WARN (default): the INFO line must not print, but the
  // ring (at INFO) still captures it for post-mortem dumps.
  CBPS_LOG_INFO << "metrics_test ring probe xyzzy";
  const auto lines = log.recent_lines();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("xyzzy"), std::string::npos);
  std::ostringstream os;
  log.dump_recent(os);
  EXPECT_NE(os.str().find("xyzzy"), std::string::npos);
  EXPECT_TRUE(log.recent_lines().empty());  // dump clears
}

TEST(LoggerContextTest, ScopedGuardsPrefixSimTimeAndNode) {
  Logger& log = Logger::instance();
  log.clear_recent();
  static constexpr std::uint64_t kNowUs = 1'500'000;
  const auto now_fn = [](const void*) -> std::uint64_t { return kNowUs; };
  {
    logctx::ScopedClock clock(nullptr, +now_fn);
    logctx::ScopedNode node(42);
    CBPS_LOG_INFO << "prefixed line";
  }
  CBPS_LOG_INFO << "bare line";
  const auto lines = log.recent_lines();
  ASSERT_GE(lines.size(), 2u);
  const std::string& prefixed = lines[lines.size() - 2];
  const std::string& bare = lines.back();
  EXPECT_NE(prefixed.find("[t=1.500000s]"), std::string::npos);
  EXPECT_NE(prefixed.find("[n=42]"), std::string::npos);
  // Guards restore the previous (empty) context on scope exit.
  EXPECT_EQ(bare.find("[n="), std::string::npos);
  EXPECT_EQ(bare.find("[t="), std::string::npos);
  log.clear_recent();
}

TEST(LoggerContextTest, RingIsBounded) {
  Logger& log = Logger::instance();
  log.clear_recent();
  for (std::size_t i = 0; i < Logger::kRingCap + 50; ++i) {
    CBPS_LOG_INFO << "fill " << i;
  }
  const auto lines = log.recent_lines();
  EXPECT_EQ(lines.size(), Logger::kRingCap);
  // Oldest lines were evicted: the ring now starts at "fill 50".
  EXPECT_NE(lines.front().find("fill 50"), std::string::npos);
  EXPECT_NE(lines.back().find("fill 305"), std::string::npos);
  log.clear_recent();
}

}  // namespace
}  // namespace cbps
