// Unit and property tests for the common substrate: SHA-1, consistent
// hashing, ring arithmetic, intervals, RNG and samplers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/common/hash.hpp"
#include "cbps/common/interval.hpp"
#include "cbps/common/logging.hpp"
#include "cbps/common/ring.hpp"
#include "cbps/common/rng.hpp"
#include "cbps/common/sha1.hpp"
#include "cbps/common/sorted_view.hpp"

namespace cbps {
namespace {

// ---------------------------------------------------------------------------
// SHA-1 (FIPS 180-1 test vectors)
// ---------------------------------------------------------------------------

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha1::to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash(
                "The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string msg = "incremental hashing must be split-invariant";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(Sha1::to_hex(h.finish()), Sha1::to_hex(Sha1::hash(msg)))
        << "split at " << split;
  }
}

TEST(Sha1Test, ResetReusesObject) {
  Sha1 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(Sha1::to_hex(h.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// ---------------------------------------------------------------------------
// Consistent hashing
// ---------------------------------------------------------------------------

TEST(ConsistentHashTest, WithinKeySpace) {
  const RingParams ring{13};
  for (int i = 0; i < 1000; ++i) {
    const Key k = consistent_hash("node-" + std::to_string(i), ring);
    EXPECT_LE(k, ring.max_key());
  }
}

TEST(ConsistentHashTest, Deterministic) {
  const RingParams ring{13};
  EXPECT_EQ(consistent_hash("alpha", ring), consistent_hash("alpha", ring));
  EXPECT_EQ(consistent_hash(std::uint64_t{42}, ring),
            consistent_hash(std::uint64_t{42}, ring));
}

TEST(ConsistentHashTest, SpreadsAcrossRing) {
  // 2000 names into 8 coarse buckets of a 2^13 ring: every bucket should
  // be populated and no bucket should dominate.
  const RingParams ring{13};
  std::map<Key, int> buckets;
  for (int i = 0; i < 2000; ++i) {
    const Key k = consistent_hash("name:" + std::to_string(i), ring);
    buckets[k / 1024]++;
  }
  EXPECT_EQ(buckets.size(), 8u);
  for (const auto& [bucket, count] : buckets) {
    EXPECT_GT(count, 150) << "bucket " << bucket;
    EXPECT_LT(count, 350) << "bucket " << bucket;
  }
}

// ---------------------------------------------------------------------------
// Ring arithmetic: exhaustive checks on a small ring vs a walking oracle
// ---------------------------------------------------------------------------

class SmallRingTest : public ::testing::Test {
 protected:
  static constexpr unsigned kBits = 4;
  RingParams ring_{kBits};

  // Oracle: walk clockwise from `a` (exclusive) for `steps` keys, check
  // whether we hit k.
  bool oracle_open_closed(Key a, Key b, Key k) const {
    if (a == b) return true;  // full ring by convention
    Key cur = a;
    do {
      cur = ring_.add(cur, 1);
      if (cur == k) return true;
    } while (cur != b);
    return false;
  }
};

TEST_F(SmallRingTest, BasicArithmetic) {
  EXPECT_EQ(ring_.size(), 16u);
  EXPECT_EQ(ring_.max_key(), 15u);
  EXPECT_EQ(ring_.add(15, 1), 0u);
  EXPECT_EQ(ring_.sub(0, 1), 15u);
  EXPECT_EQ(ring_.distance(14, 2), 4u);
  EXPECT_EQ(ring_.distance(2, 14), 12u);
  EXPECT_EQ(ring_.distance(5, 5), 0u);
}

TEST_F(SmallRingTest, OpenClosedMatchesOracle) {
  for (Key a = 0; a < 16; ++a) {
    for (Key b = 0; b < 16; ++b) {
      for (Key k = 0; k < 16; ++k) {
        EXPECT_EQ(ring_.in_open_closed(a, b, k), oracle_open_closed(a, b, k))
            << "(" << a << ", " << b << "] ∋ " << k;
      }
    }
  }
}

TEST_F(SmallRingTest, IntervalVariantsConsistent) {
  for (Key a = 0; a < 16; ++a) {
    for (Key b = 0; b < 16; ++b) {
      for (Key k = 0; k < 16; ++k) {
        // (a, b) == (a, b] minus b  (for a != b).
        if (a != b) {
          EXPECT_EQ(ring_.in_open_open(a, b, k),
                    ring_.in_open_closed(a, b, k) && k != b);
          // [a, b) == (a-1, b-1].
          EXPECT_EQ(ring_.in_closed_open(a, b, k),
                    ring_.in_open_closed(ring_.sub(a, 1), ring_.sub(b, 1),
                                         k));
        }
        // [a, b] == (a-1, b].
        EXPECT_EQ(ring_.in_closed_closed(a, b, k),
                  ring_.in_open_closed(ring_.sub(a, 1), b, k));
      }
    }
  }
}

TEST_F(SmallRingTest, DegenerateIntervals) {
  EXPECT_TRUE(ring_.in_open_closed(3, 3, 3));    // full ring
  EXPECT_TRUE(ring_.in_open_closed(3, 3, 10));   // full ring
  EXPECT_TRUE(ring_.in_closed_closed(7, 7, 7));  // singleton
  EXPECT_FALSE(ring_.in_closed_closed(7, 7, 8));
  EXPECT_FALSE(ring_.in_open_open(5, 5, 5));  // all but a
  EXPECT_TRUE(ring_.in_open_open(5, 5, 6));
}

TEST_F(SmallRingTest, MidpointHalvesDistance) {
  for (Key a = 0; a < 16; ++a) {
    for (Key b = 0; b < 16; ++b) {
      const Key m = ring_.midpoint(a, b);
      EXPECT_TRUE(ring_.in_closed_closed(a, b, m));
      EXPECT_EQ(ring_.distance(a, m), ring_.distance(a, b) / 2);
    }
  }
}

TEST(RingParamsTest, LargeRingWrap) {
  const RingParams ring{63};
  EXPECT_EQ(ring.add(ring.max_key(), 1), 0u);
  EXPECT_EQ(ring.distance(ring.max_key(), 0), 1u);
  EXPECT_TRUE(ring.in_open_closed(ring.max_key(), 1, 0));
}

TEST(RingParamsTest, ClosedIntervalSize) {
  const RingParams ring{13};
  EXPECT_EQ(ring.closed_interval_size(10, 10), 1u);
  EXPECT_EQ(ring.closed_interval_size(10, 19), 10u);
  EXPECT_EQ(ring.closed_interval_size(8190, 1), 4u);  // 8190,8191,0,1
}

// ---------------------------------------------------------------------------
// ClosedInterval
// ---------------------------------------------------------------------------

TEST(ClosedIntervalTest, ContainsAndWidth) {
  const ClosedInterval i{-5, 5};
  EXPECT_TRUE(i.contains(-5));
  EXPECT_TRUE(i.contains(0));
  EXPECT_TRUE(i.contains(5));
  EXPECT_FALSE(i.contains(6));
  EXPECT_FALSE(i.contains(-6));
  EXPECT_EQ(i.width(), 11u);
  EXPECT_EQ(ClosedInterval::point(7).width(), 1u);
}

TEST(ClosedIntervalTest, IntersectAndOverlap) {
  const ClosedInterval a{0, 10};
  const ClosedInterval b{5, 15};
  const ClosedInterval c{11, 20};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
  ASSERT_TRUE(a.intersect(b).has_value());
  EXPECT_EQ(*a.intersect(b), (ClosedInterval{5, 10}));
  EXPECT_FALSE(a.intersect(c).has_value());
  // Touching endpoints intersect in a single point.
  ASSERT_TRUE(a.intersect(ClosedInterval{10, 12}).has_value());
  EXPECT_EQ(*a.intersect(ClosedInterval{10, 12}), ClosedInterval::point(10));
}

// ---------------------------------------------------------------------------
// Rng & samplers
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
  // Degenerate interval.
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    counts[static_cast<std::size_t>(rng.uniform_int(0, 9))]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 100);
  }
}

TEST(RngTest, Uniform01Range) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.exponential(5.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.1);
  EXPECT_GE(stat.min(), 0.0);
}

TEST(RngTest, SplitStreamsAreIndependentlySeeded) {
  Rng base(42);
  Rng s1 = base.split();
  Rng s2 = base.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.next() == s2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ZipfTest, RanksWithinDomain) {
  Rng rng(3);
  ZipfSampler zipf(1000, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t r = zipf(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 1000u);
  }
}

TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  Rng rng(17);
  ZipfSampler zipf(10000, 1.0);
  std::map<std::uint64_t, int> counts;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) counts[zipf(rng)]++;
  // P(1)/P(2) should be ~2, P(1)/P(4) ~4 (s = 1).
  ASSERT_GT(counts[1], 0);
  ASSERT_GT(counts[2], 0);
  ASSERT_GT(counts[4], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.3);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[4], 4.0, 0.6);
}

TEST(ZipfTest, HugeDomainStaysCheapAndSkewed) {
  // The paper's selective centers are Zipf over up to 10^6 values; the
  // sampler must be O(1) per draw and strongly skewed toward low ranks.
  Rng rng(23);
  ZipfSampler zipf(1'000'000, 1.0);
  int low = 0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf(rng) <= 1000) ++low;
  }
  // With s=1, P(rank <= 1000) = H(1000)/H(1e6) ≈ 0.52.
  EXPECT_GT(low, kSamples / 3);
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(1);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 1u);
}

TEST(RunningStatTest, Moments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-9);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

// Every CBPS_ASSERT failure — in benches and tools as much as under the
// audit_* checks — must dump the logger's recent-lines ring: the lines
// leading up to the violation are usually the story.
TEST(AssertDeathTest, FailureDumpsRecentLogRing) {
  EXPECT_DEATH(
      {
        Logger::instance().set_ring_level(LogLevel::kInfo);
        CBPS_LOG_INFO << "breadcrumb before the assertion";
        CBPS_ASSERT_MSG(false, "intentional");
      },
      "CBPS_ASSERT failed(.|\n)*recent log lines(.|\n)*breadcrumb before "
      "the assertion");
}

TEST(SortedViewTest, MapSortedByKeySetByValue) {
  std::unordered_map<int, std::string> m{{3, "c"}, {1, "a"}, {2, "b"}};
  std::vector<int> keys;
  for (const auto* e : sorted_view(m)) keys.push_back(e->first);
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));

  std::unordered_set<int> s{5, 9, 2};
  std::vector<int> vals;
  for (const int* v : sorted_view(s)) vals.push_back(*v);
  EXPECT_EQ(vals, (std::vector<int>{2, 5, 9}));
}

TEST(SortedViewTest, MutableMapViewAllowsMovingValuesOut) {
  std::unordered_map<int, std::vector<int>> m{{2, {4, 5}}, {1, {6}}};
  std::vector<int> drained;
  for (auto* e : sorted_view(m)) {
    for (int v : e->second) drained.push_back(v);
    e->second.clear();
  }
  EXPECT_EQ(drained, (std::vector<int>{6, 4, 5}));
  EXPECT_TRUE(m.at(1).empty());
  EXPECT_TRUE(m.at(2).empty());
}

}  // namespace
}  // namespace cbps
