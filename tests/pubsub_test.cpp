// End-to-end tests of the CB-pub/sub layer: storage, matching,
// notification paths (immediate / buffered / collected), expiration,
// unsubscription, replication under crashes, and state handover across
// joins and leaves. Delivery correctness is checked by the
// DeliveryChecker oracle: every matching pair delivered exactly once, no
// spurious notifications.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::pubsub {
namespace {

using Transport = PubSubConfig::Transport;

Schema small_schema() { return Schema::uniform(2, 9'999); }

SystemConfig small_config(MappingKind kind, std::size_t nodes = 24) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 7;
  cfg.chord.ring = RingParams{10};
  cfg.mapping = kind;
  return cfg;
}

// Wire a checker into a system: every notification is recorded.
void attach_checker(PubSubSystem& system, DeliveryChecker& checker) {
  system.set_notify_sink(
      [&system, &checker](Key subscriber, const Notification& n) {
        checker.on_notify(subscriber, n, system.sim().now());
      });
}

// ---------------------------------------------------------------------------
// SubscriptionStore
// ---------------------------------------------------------------------------

SubscriptionPtr store_sub(SubscriptionId id, Value lo, Value hi) {
  auto s = std::make_shared<Subscription>();
  s->id = id;
  s->subscriber = 1;
  s->constraints = {{0, {lo, hi}}};
  return s;
}

TEST(SubscriptionStoreTest, InsertDedupAndCounts) {
  SubscriptionStore store;
  EXPECT_TRUE(store.insert({store_sub(1, 0, 10), sim::kSimTimeNever, {}, false}));
  EXPECT_FALSE(store.insert({store_sub(1, 0, 10), sim::kSimTimeNever, {}, false}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.owned_size(), 1u);
  EXPECT_TRUE(store.insert({store_sub(2, 0, 10), sim::kSimTimeNever, {}, true}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.owned_size(), 1u);  // replica not counted
}

TEST(SubscriptionStoreTest, ReplicaUpgradesToOwned) {
  SubscriptionStore store;
  store.insert({store_sub(1, 0, 10), sim::kSimTimeNever, {}, true});
  EXPECT_EQ(store.owned_size(), 0u);
  store.insert({store_sub(1, 0, 10), sim::kSimTimeNever, {}, false});
  EXPECT_EQ(store.owned_size(), 1u);
  EXPECT_EQ(store.size(), 1u);
  // Owned records are never downgraded by replica inserts.
  store.insert({store_sub(1, 0, 10), sim::kSimTimeNever, {}, true});
  EXPECT_EQ(store.owned_size(), 1u);
}

TEST(SubscriptionStoreTest, ExpirySweepAndNextExpiry) {
  SubscriptionStore store;
  store.insert({store_sub(1, 0, 10), sim::sec(10), {}, false});
  store.insert({store_sub(2, 0, 10), sim::sec(5), {}, false});
  store.insert({store_sub(3, 0, 10), sim::kSimTimeNever, {}, false});
  EXPECT_EQ(store.next_expiry(), sim::sec(5));
  EXPECT_EQ(store.sweep_expired(sim::sec(5)), 1u);
  EXPECT_EQ(store.next_expiry(), sim::sec(10));
  EXPECT_EQ(store.sweep_expired(sim::sec(60)), 1u);
  EXPECT_EQ(store.next_expiry(), sim::kSimTimeNever);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SubscriptionStoreTest, RefreshUpdatesExpiryIndex) {
  SubscriptionStore store;
  store.insert({store_sub(1, 0, 10), sim::sec(5), {}, false});
  store.insert({store_sub(1, 0, 10), sim::sec(20), {}, false});
  EXPECT_EQ(store.next_expiry(), sim::sec(20));
  EXPECT_EQ(store.sweep_expired(sim::sec(10)), 0u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SubscriptionStoreTest, MatchSkipsExpired) {
  SubscriptionStore store;
  store.insert({store_sub(1, 0, 100), sim::sec(5), {}, false});
  Event e;
  e.id = 1;
  e.values = {50};
  EXPECT_EQ(store.match(e, sim::sec(1)).size(), 1u);
  EXPECT_EQ(store.match(e, sim::sec(5)).size(), 0u);  // expired, unswept
}

TEST(SubscriptionStoreTest, PeakTracksHighWaterMark) {
  SubscriptionStore store;
  store.insert({store_sub(1, 0, 10), sim::kSimTimeNever, {}, false});
  store.insert({store_sub(2, 0, 10), sim::kSimTimeNever, {}, false});
  store.remove(1);
  store.remove(2);
  EXPECT_EQ(store.owned_size(), 0u);
  EXPECT_EQ(store.peak_owned_size(), 2u);
}

// ---------------------------------------------------------------------------
// Basic pub/sub flow
// ---------------------------------------------------------------------------

TEST(PubSubBasicTest, SubscriberReceivesMatchingEvent) {
  PubSubSystem system(small_config(MappingKind::kSelectiveAttribute),
                      small_schema());
  std::vector<Notification> received;
  system.set_notify_sink([&](Key, const Notification& n) {
    received.push_back(n);
  });

  auto sub = system.subscribe(3, {{0, {100, 200}}, {1, {0, 9'999}}});
  system.run_for(sim::sec(5));
  system.publish(10, {150, 5'000});
  system.quiesce();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].subscription, sub->id);
  EXPECT_EQ(received[0].event->values, (std::vector<Value>{150, 5'000}));
}

TEST(PubSubBasicTest, NonMatchingEventIsSilent) {
  PubSubSystem system(small_config(MappingKind::kSelectiveAttribute),
                      small_schema());
  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  system.subscribe(3, {{0, {100, 200}}});
  system.run_for(sim::sec(5));
  system.publish(10, {201, 0});
  system.publish(11, {99, 9'999});
  system.quiesce();
  EXPECT_EQ(count, 0u);
}

TEST(PubSubBasicTest, MultipleSubscribersAllNotified) {
  PubSubSystem system(small_config(MappingKind::kKeySpaceSplit),
                      small_schema());
  std::vector<Key> notified;
  system.set_notify_sink([&](Key subscriber, const Notification&) {
    notified.push_back(subscriber);
  });
  for (std::size_t i = 0; i < 6; ++i) {
    system.subscribe(i, {{0, {1'000, 2'000}}});
  }
  system.run_for(sim::sec(5));
  system.publish(20, {1'500, 42});
  system.quiesce();
  EXPECT_EQ(notified.size(), 6u);
}

TEST(PubSubBasicTest, UnsubscribeStopsNotifications) {
  PubSubSystem system(small_config(MappingKind::kSelectiveAttribute),
                      small_schema());
  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  auto sub = system.subscribe(5, {{0, {0, 500}}});
  system.run_for(sim::sec(5));
  system.publish(1, {250, 1});
  system.run_for(sim::sec(5));
  EXPECT_EQ(count, 1u);
  system.unsubscribe(5, sub->id);
  system.run_for(sim::sec(5));
  system.publish(2, {250, 2});
  system.quiesce();
  EXPECT_EQ(count, 1u);
}

TEST(PubSubBasicTest, ExpirationActsAsUnsubscription) {
  PubSubSystem system(small_config(MappingKind::kSelectiveAttribute),
                      small_schema());
  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  system.subscribe(5, {{0, {0, 500}}}, /*ttl=*/sim::sec(30));
  system.run_for(sim::sec(5));
  system.publish(1, {100, 1});
  system.run_for(sim::sec(60));  // subscription expires at t=30
  EXPECT_EQ(count, 1u);
  system.publish(2, {100, 2});
  system.quiesce();
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(system.storage_stats().total_owned, 0u);
}

TEST(PubSubBasicTest, SubscriberOnOwnRendezvousNode) {
  // The subscriber can itself be a rendezvous for its subscription.
  PubSubSystem system(small_config(MappingKind::kAttributeSplit, 4),
                      small_schema());
  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  system.subscribe(0, {{0, {0, 9'999}}, {1, {0, 9'999}}});  // everything
  system.run_for(sim::sec(5));
  system.publish(0, {1, 1});
  system.quiesce();
  EXPECT_EQ(count, 1u);
}

// ---------------------------------------------------------------------------
// Randomized end-to-end correctness across the full config matrix
// ---------------------------------------------------------------------------

struct E2EParam {
  MappingKind kind;
  Transport sub_transport;
  Transport pub_transport;
  bool buffering;
  bool collecting;
  const char* name;
  MatchEngine engine = MatchEngine::kBruteForce;
};

class PubSubEndToEndTest : public ::testing::TestWithParam<E2EParam> {};

TEST_P(PubSubEndToEndTest, RandomWorkloadDeliversExactlyOnce) {
  const E2EParam p = GetParam();
  SystemConfig cfg;
  cfg.nodes = 32;
  cfg.seed = 99;
  cfg.chord.ring = RingParams{12};
  cfg.mapping = p.kind;
  cfg.pubsub.sub_transport = p.sub_transport;
  cfg.pubsub.pub_transport = p.pub_transport;
  cfg.pubsub.buffering = p.buffering;
  cfg.pubsub.collecting = p.collecting;
  cfg.pubsub.buffer_period = sim::sec(2);
  cfg.pubsub.match_engine = p.engine;

  const Schema schema = Schema::uniform(3, 99'999);
  PubSubSystem system(cfg, schema);
  DeliveryChecker checker;
  attach_checker(system, checker);

  workload::WorkloadParams wp;
  wp.matching_probability = 0.7;
  wp.nonselective_range_frac = 0.10;  // wide ranges -> multi-key SK
  workload::WorkloadGenerator gen(schema, wp, 1234);

  Rng& rng = gen.rng();
  // Interleave subscriptions and publications, checker-tracked.
  for (int round = 0; round < 30; ++round) {
    const auto node = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(system.node_count()) - 1));
    auto sub = system.subscribe(node, gen.make_constraints());
    checker.on_subscribe(sub, system.sim().now(), sim::kSimTimeNever);
    system.run_for(sim::sec(3));

    std::vector<SubscriptionPtr> active;
    active.push_back(sub);
    for (int e = 0; e < 3; ++e) {
      const auto pub_node = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(system.node_count()) - 1));
      const std::vector<Value> values = gen.make_event_values(active);
      const EventId id = system.publish(pub_node, values);
      auto event = std::make_shared<Event>();
      event->id = id;
      event->values = values;
      checker.on_publish(std::move(event), system.sim().now());
      system.run_for(sim::sec(1));
    }
  }
  system.quiesce();

  const DeliveryChecker::Report report = checker.verify();
  EXPECT_GT(report.expected, 0u);
  EXPECT_TRUE(report.ok()) << p.name << ": missing=" << report.missing
                           << " dup=" << report.duplicates
                           << " spurious=" << report.spurious
                           << " wrong=" << report.wrong_subscriber
                           << (report.issues.empty() ? ""
                                                     : "\n  " +
                                                           report.issues[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PubSubEndToEndTest,
    ::testing::Values(
        E2EParam{MappingKind::kAttributeSplit, Transport::kUnicast,
                 Transport::kUnicast, false, false, "m1_unicast"},
        E2EParam{MappingKind::kAttributeSplit, Transport::kMulticast,
                 Transport::kMulticast, false, false, "m1_mcast"},
        E2EParam{MappingKind::kAttributeSplit, Transport::kChain,
                 Transport::kUnicast, false, false, "m1_chain"},
        E2EParam{MappingKind::kKeySpaceSplit, Transport::kUnicast,
                 Transport::kUnicast, false, false, "m2_unicast"},
        E2EParam{MappingKind::kKeySpaceSplit, Transport::kMulticast,
                 Transport::kMulticast, false, false, "m2_mcast"},
        E2EParam{MappingKind::kSelectiveAttribute, Transport::kUnicast,
                 Transport::kUnicast, false, false, "m3_unicast"},
        E2EParam{MappingKind::kSelectiveAttribute, Transport::kMulticast,
                 Transport::kMulticast, false, false, "m3_mcast"},
        E2EParam{MappingKind::kSelectiveAttribute, Transport::kUnicast,
                 Transport::kUnicast, true, false, "m3_buffering"},
        E2EParam{MappingKind::kSelectiveAttribute, Transport::kUnicast,
                 Transport::kUnicast, true, true, "m3_buf_collect"},
        E2EParam{MappingKind::kAttributeSplit, Transport::kMulticast,
                 Transport::kUnicast, true, true, "m1_mcast_buf_collect"},
        E2EParam{MappingKind::kKeySpaceSplit, Transport::kUnicast,
                 Transport::kUnicast, true, false, "m2_buffering"},
        E2EParam{MappingKind::kSelectiveAttribute, Transport::kMulticast,
                 Transport::kMulticast, false, false, "m3_counting_index",
                 MatchEngine::kCountingIndex},
        E2EParam{MappingKind::kAttributeSplit, Transport::kUnicast,
                 Transport::kUnicast, true, true,
                 "m1_counting_buf_collect", MatchEngine::kCountingIndex}),
    [](const ::testing::TestParamInfo<E2EParam>& info) {
      return info.param.name;
    });

TEST(PubSubBasicTest, DisjunctionTreatedAsSeparateSubscriptions) {
  PubSubSystem system(small_config(MappingKind::kSelectiveAttribute),
                      small_schema());
  // Keyed by publishing event id: inter-publication notification order
  // depends on latency draws and is not part of the contract.
  std::map<EventId, std::set<SubscriptionId>> notified;
  system.set_notify_sink([&](Key, const Notification& n) {
    notified[n.event->id].insert(n.subscription);
  });
  // (a0 in [0,100]) OR (a0 in [5000,5100]) OR (a1 in [9000,9999]).
  const auto subs = system.subscribe_disjunction(
      4, {{{0, {0, 100}}}, {{0, {5'000, 5'100}}}, {{1, {9'000, 9'999}}}});
  ASSERT_EQ(subs.size(), 3u);
  system.run_for(sim::sec(5));

  const EventId e1 = system.publish(7, {50, 0});        // clause 1 only
  const EventId e2 = system.publish(8, {5'050, 9'500}); // clauses 2 and 3
  const EventId e3 = system.publish(9, {3'000, 0});     // none
  system.quiesce();
  // One notification per matching clause, per the paper's semantics.
  ASSERT_EQ(notified.size(), 2u);
  EXPECT_EQ(notified[e1], (std::set<SubscriptionId>{subs[0]->id}));
  EXPECT_EQ(notified[e2],
            (std::set<SubscriptionId>{subs[1]->id, subs[2]->id}));
  EXPECT_FALSE(notified.contains(e3));
}

TEST(SchemaTest, AttributeIndexLookup) {
  const Schema schema({{"price", {0, 100}}, {"volume", {0, 10}}});
  EXPECT_EQ(schema.attribute_index("price"), std::optional<std::size_t>(0));
  EXPECT_EQ(schema.attribute_index("volume"),
            std::optional<std::size_t>(1));
  EXPECT_FALSE(schema.attribute_index("nope").has_value());
}

TEST(PubSubRotationTest, RotatedMappingDeliversEndToEnd) {
  // The §4.2 "nearly static" epoch offset, live: the system works
  // identically with a rotated key space — only the rendezvous placement
  // moves.
  SystemConfig cfg = small_config(MappingKind::kSelectiveAttribute);
  cfg.mapping_options.rotation = 371;
  PubSubSystem system(cfg, small_schema());
  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  system.subscribe(3, {{0, {100, 200}}});
  system.run_for(sim::sec(5));
  system.publish(10, {150, 5'000});
  system.publish(11, {500, 5'000});  // no match
  system.quiesce();
  EXPECT_EQ(count, 1u);
}

// ---------------------------------------------------------------------------
// Buffering / collecting behavior
// ---------------------------------------------------------------------------

TEST(PubSubBufferingTest, NotificationsAreBatchedPerSubscriber) {
  SystemConfig cfg = small_config(MappingKind::kSelectiveAttribute);
  cfg.pubsub.buffering = true;
  cfg.pubsub.buffer_period = sim::sec(10);
  PubSubSystem system(cfg, small_schema());

  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  system.subscribe(2, {{0, {0, 200}}});
  system.run_for(sim::sec(5));
  // Three matching events in a burst: one batch, three notifications.
  system.publish(9, {10, 0});
  system.publish(9, {20, 0});
  system.publish(9, {30, 0});
  system.run_for(sim::sec(2));
  EXPECT_EQ(count, 0u);  // still buffered
  system.quiesce();
  EXPECT_EQ(count, 3u);

  // Exactly one NotifyMsg batch was sent by the rendezvous.
  std::uint64_t batches = 0;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    batches += system.pubsub_node(i).notify_batches_sent();
  }
  EXPECT_EQ(batches, 1u);
}

TEST(PubSubBufferingTest, DelayStatReflectsBufferingCost) {
  auto run_delay = [](bool buffering) {
    SystemConfig cfg = small_config(MappingKind::kSelectiveAttribute);
    cfg.pubsub.buffering = buffering;
    cfg.pubsub.buffer_period = sim::sec(10);
    PubSubSystem system(cfg, small_schema());
    system.subscribe(2, {{0, {0, 500}}});
    system.run_for(sim::sec(5));
    system.publish(9, {100, 0});
    system.quiesce();
    return system.notification_delay();
  };
  const RunningStat immediate = run_delay(false);
  const RunningStat buffered = run_delay(true);
  ASSERT_EQ(immediate.count(), 1u);
  ASSERT_EQ(buffered.count(), 1u);
  // Immediate: a couple of 50 ms hops. Buffered: + the 10 s period.
  EXPECT_LT(immediate.mean(), 1.0);
  EXPECT_GT(buffered.mean(), 10.0);
}

TEST(PubSubBufferingTest, BufferingDelaysButDelivers) {
  SystemConfig cfg = small_config(MappingKind::kSelectiveAttribute);
  cfg.pubsub.buffering = true;
  cfg.pubsub.buffer_period = sim::sec(7);
  PubSubSystem system(cfg, small_schema());
  sim::SimTime delivered_at = 0;
  system.set_notify_sink([&](Key, const Notification&) {
    delivered_at = system.sim().now();
  });
  system.subscribe(1, {{0, {500, 600}}});
  system.run_for(sim::sec(5));
  const sim::SimTime published_at = system.sim().now();
  system.publish(7, {550, 1});
  system.quiesce();
  EXPECT_GE(delivered_at, published_at + sim::sec(7));
}

TEST(PubSubCollectingTest, CollectTrafficFlowsAndAggregates) {
  // A wide single-attribute subscription spans a long key range; with
  // collecting on, matches from non-agent rendezvous travel as kCollect
  // neighbor hops and the agent emits the kNotify messages.
  SystemConfig cfg = small_config(MappingKind::kSelectiveAttribute, 32);
  cfg.pubsub.collecting = true;
  cfg.pubsub.buffer_period = sim::sec(2);
  PubSubSystem system(cfg, small_schema());

  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  // Range spanning half the domain -> half the ring -> many rendezvous.
  system.subscribe(3, {{0, {0, 5'000}}});
  system.run_for(sim::sec(5));
  for (int i = 0; i < 10; ++i) {
    system.publish(static_cast<std::size_t>(i), {i * 500, 7});
  }
  system.quiesce();
  EXPECT_EQ(count, 10u);
  EXPECT_GT(system.traffic().hops(overlay::MessageClass::kCollect), 0u);
}

// ---------------------------------------------------------------------------
// Replication & crash resilience (§4.1)
// ---------------------------------------------------------------------------

TEST(PubSubReplicationTest, CrashedRendezvousStateSurvives) {
  SystemConfig cfg = small_config(MappingKind::kKeySpaceSplit, 24);
  cfg.pubsub.replication_factor = 2;
  cfg.chord.stabilize_period = sim::sec(5);
  PubSubSystem system(cfg, small_schema());
  system.network().start_maintenance_all();

  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });

  // Both attributes tightly constrained: SK is a couple of keys held by
  // one or two nodes, so their replicas land on surviving successors.
  auto sub = system.subscribe(2, {{0, {4'000, 4'200}}, {1, {5'000, 5'100}}});
  system.run_for(sim::sec(10));

  // Find and crash the rendezvous node(s) storing the subscription —
  // but not the subscriber itself.
  std::vector<Key> to_crash;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    const auto* rec = system.pubsub_node(i).store().find(sub->id);
    if (rec != nullptr && !rec->replica &&
        system.node_id(i) != sub->subscriber) {
      to_crash.push_back(system.node_id(i));
    }
  }
  ASSERT_FALSE(to_crash.empty());
  for (Key id : to_crash) system.network().crash(id);
  system.run_for(sim::sec(120));  // let the ring repair

  system.publish(5, {4'100, 5'050});
  system.run_for(sim::sec(30));
  EXPECT_EQ(count, 1u) << "replica should answer after the crash";
}

TEST(PubSubReplicationTest, UnsubscribeRemovesReplicas) {
  SystemConfig cfg = small_config(MappingKind::kKeySpaceSplit, 16);
  cfg.pubsub.replication_factor = 2;
  PubSubSystem system(cfg, small_schema());
  auto sub = system.subscribe(1, {{0, {100, 300}}, {1, {0, 9'999}}});
  system.run_for(sim::sec(10));
  EXPECT_GT(system.storage_stats().total_replicas, 0u);
  system.unsubscribe(1, sub->id);
  system.run_for(sim::sec(10));
  EXPECT_EQ(system.storage_stats().total_owned, 0u);
  EXPECT_EQ(system.storage_stats().total_replicas, 0u);
}

// ---------------------------------------------------------------------------
// State handover on join/leave
// ---------------------------------------------------------------------------

TEST(PubSubChurnTest, GracefulLeaveKeepsDelivering) {
  SystemConfig cfg = small_config(MappingKind::kSelectiveAttribute, 24);
  cfg.chord.stabilize_period = sim::sec(5);
  PubSubSystem system(cfg, small_schema());
  system.network().start_maintenance_all();

  std::uint64_t count = 0;
  system.set_notify_sink([&](Key, const Notification&) { ++count; });
  auto sub = system.subscribe(2, {{0, {7'000, 7'400}}});
  system.run_for(sim::sec(10));

  // Gracefully remove every rendezvous holding the subscription (except
  // the subscriber node itself).
  std::vector<Key> leavers;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    const auto* rec = system.pubsub_node(i).store().find(sub->id);
    if (rec != nullptr && system.node_id(i) != sub->subscriber) {
      leavers.push_back(system.node_id(i));
    }
  }
  ASSERT_FALSE(leavers.empty());
  for (Key id : leavers) {
    system.network().leave_gracefully(id);
    system.run_for(sim::sec(30));
  }

  system.publish(5, {7'200, 123});
  system.run_for(sim::sec(30));
  EXPECT_EQ(count, 1u) << "state must have moved to the successors";
}

}  // namespace
}  // namespace cbps::pubsub
