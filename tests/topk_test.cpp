// Load-observatory unit tests: the space-saving sketch's accuracy and
// determinism guarantees (the fold across shards depends on them) plus
// TimeSeries edge cases the sampler can hit on degenerate runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <vector>

#include "cbps/metrics/timeseries.hpp"
#include "cbps/metrics/topk.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/sim/time.hpp"

using namespace cbps;

namespace {

// Zipf-ish deterministic stream: key r drawn with weight ~ 1/(r+1).
std::vector<std::uint64_t> skewed_stream(std::size_t n, std::uint64_t seed,
                                         std::size_t universe = 400) {
  std::vector<double> weights(universe);
  for (std::size_t r = 0; r < universe; ++r) {
    weights[r] = 1.0 / static_cast<double>(r + 1);
  }
  std::discrete_distribution<std::size_t> dist(weights.begin(),
                                               weights.end());
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Scatter ranks over ids so key order is unrelated to popularity.
    stream[i] = dist(rng) * 2654435761u % 100003u;
  }
  return stream;
}

std::map<std::uint64_t, std::uint64_t> exact_counts(
    const std::vector<std::uint64_t>& stream) {
  std::map<std::uint64_t, std::uint64_t> exact;
  for (const std::uint64_t k : stream) ++exact[k];
  return exact;
}

}  // namespace

// ---------------------------------------------------------------------------
// TopK — space-saving guarantees
// ---------------------------------------------------------------------------

TEST(TopKTest, ExactWhenUnderCapacity) {
  metrics::TopK sketch(64);
  sketch.offer(7, 3);
  sketch.offer(2);
  sketch.offer(7, 2);
  EXPECT_EQ(sketch.total(), 6u);
  EXPECT_EQ(sketch.size(), 2u);
  EXPECT_EQ(sketch.find(7).count, 5u);
  EXPECT_EQ(sketch.find(7).error, 0u);
  EXPECT_EQ(sketch.find(2).count, 1u);
  EXPECT_EQ(sketch.find(99).count, 0u);

  const auto top = sketch.top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 7u);
  EXPECT_EQ(top[1].key, 2u);
}

TEST(TopKTest, ZeroWeightOfferIsIgnored) {
  metrics::TopK sketch(2);
  sketch.offer(1, 0);
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.total(), 0u);
}

TEST(TopKTest, ErrorBoundAgainstExactOracle) {
  const auto stream = skewed_stream(20000, 42);
  const auto exact = exact_counts(stream);

  const std::size_t cap = 32;
  metrics::TopK sketch(cap);
  for (const std::uint64_t k : stream) sketch.offer(k);

  ASSERT_EQ(sketch.total(), stream.size());
  ASSERT_LE(sketch.size(), cap);
  const std::uint64_t bound = stream.size() / cap;  // error <= N/K
  for (const auto& e : sketch.top(cap)) {
    const auto it = exact.find(e.key);
    const std::uint64_t truth = it == exact.end() ? 0 : it->second;
    EXPECT_LE(truth, e.count) << "key " << e.key;
    EXPECT_LE(e.count - e.error, truth) << "key " << e.key;
    EXPECT_LE(e.error, bound) << "key " << e.key;
  }
  // Every key heavier than N/K must be tracked.
  for (const auto& [key, truth] : exact) {
    if (truth > bound) {
      EXPECT_GT(sketch.find(key).count, 0u)
          << "heavy key " << key << " (" << truth << " > " << bound
          << ") missing";
    }
  }
}

TEST(TopKTest, EvictionTieBreakIsLargestKey) {
  metrics::TopK sketch(3);
  // Three residents, all count 1 — the minima set is everyone.
  sketch.offer(10);
  sketch.offer(30);
  sketch.offer(20);
  // The newcomer evicts key 30 (largest id among the min-count entries)
  // and inherits its count as error.
  sketch.offer(5);
  EXPECT_EQ(sketch.find(30).count, 0u);
  EXPECT_EQ(sketch.find(10).count, 1u);
  EXPECT_EQ(sketch.find(20).count, 1u);
  EXPECT_EQ(sketch.find(5).count, 2u);  // floor 1 + weight 1
  EXPECT_EQ(sketch.find(5).error, 1u);

  // Minimum count beats key order: bump 10 and 20, then a newcomer must
  // take the (sole) min-count slot even though its key id is smaller.
  sketch.offer(10, 5);
  sketch.offer(20, 5);
  sketch.offer(1);
  EXPECT_EQ(sketch.find(5).count, 0u);
  EXPECT_EQ(sketch.find(1).count, 3u);  // floor 2 + 1
  EXPECT_EQ(sketch.find(1).error, 2u);
}

TEST(TopKTest, TopOrdersByCountThenKey) {
  metrics::TopK sketch(8);
  sketch.offer(4, 2);
  sketch.offer(9, 5);
  sketch.offer(6, 2);
  const auto top = sketch.top(8);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 9u);
  EXPECT_EQ(top[1].key, 4u);  // count tie with 6 -> smaller key first
  EXPECT_EQ(top[2].key, 6u);
}

// The fold across shards must not depend on merge order: union-sum with
// no eviction is associative and commutative.
TEST(TopKTest, MergeIsPermutationInvariant) {
  const auto stream = skewed_stream(12000, 7);
  const std::size_t shards = 8;
  std::vector<metrics::TopK> per_shard(shards, metrics::TopK(16));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    per_shard[i % shards].offer(stream[i]);
  }

  const auto fold = [&](const std::vector<std::size_t>& order) {
    metrics::TopK acc(16);
    for (const std::size_t s : order) acc.merge(per_shard[s]);
    return acc;
  };

  std::vector<std::size_t> order(shards);
  for (std::size_t s = 0; s < shards; ++s) order[s] = s;
  const metrics::TopK ring_order = fold(order);

  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    const metrics::TopK permuted = fold(order);
    EXPECT_EQ(permuted.total(), ring_order.total());
    EXPECT_EQ(permuted.size(), ring_order.size());
    EXPECT_EQ(permuted.top(permuted.size()), ring_order.top(ring_order.size()))
        << "fold order changed the merged sketch (trial " << trial << ")";
  }

  // Associativity: ((a+b)+c) == (a+(b+c)) on the first three shards.
  metrics::TopK left(16), bc(16), right(16);
  left.merge(per_shard[0]);
  left.merge(per_shard[1]);
  left.merge(per_shard[2]);
  bc.merge(per_shard[1]);
  bc.merge(per_shard[2]);
  right.merge(per_shard[0]);
  right.merge(bc);
  EXPECT_EQ(left.top(left.size()), right.top(right.size()));
  EXPECT_EQ(left.total(), right.total());
}

// The union-sum keeps the one-sided guarantee count - error <= truth
// across shards that all see the same key universe: each shard's tracked
// count obeys it, untracked shards contribute 0 <= their truth, and both
// sides add. (The upper bound truth <= count needs key-disjoint shard
// streams — exactly what the per-node rendezvous sketches are; the
// system-level LoadObservatoryTest asserts the full bracket there.)
TEST(TopKTest, MergedSketchKeepsErrorBracket) {
  const auto stream = skewed_stream(12000, 11);
  const auto exact = exact_counts(stream);
  const std::size_t shards = 4;
  std::vector<metrics::TopK> per_shard(shards, metrics::TopK(24));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    per_shard[i % shards].offer(stream[i]);
  }
  metrics::TopK merged(24);
  for (const metrics::TopK& s : per_shard) merged.merge(s);

  EXPECT_EQ(merged.total(), stream.size());
  for (const auto& e : merged.top(merged.size())) {
    const auto it = exact.find(e.key);
    const std::uint64_t truth = it == exact.end() ? 0 : it->second;
    EXPECT_LE(e.count - e.error, truth) << "key " << e.key;
  }
}

TEST(TopKTest, ResetClearsEverything) {
  metrics::TopK sketch(4);
  sketch.offer(1, 10);
  sketch.reset();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.total(), 0u);
  EXPECT_EQ(sketch.capacity(), 4u);
}

// ---------------------------------------------------------------------------
// TimeSeries — sampler edge cases
// ---------------------------------------------------------------------------

// A sampler period longer than the whole run leaves exactly the baseline
// row from start_sampler(); export must still be well-formed.
TEST(TimeSeriesEdgeTest, PeriodLongerThanRunYieldsBaselineRowOnly) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 16;
  cfg.chord.ring = RingParams{10};
  cfg.seed = 3;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(2, 1000));
  system.start_sampler(sim::sec(1'000'000));
  // The periodic timer keeps the queue alive; advance a bounded window
  // (the harness's idiom), then disarm before draining.
  system.run_for(sim::sec(100));
  system.stop_sampler();
  system.quiesce();

  const metrics::TimeSeries& ts = system.timeseries();
  ASSERT_EQ(ts.size(), 1u);  // the period never elapsed: baseline only
  // The baseline row is sampled at t=0 before any workload: no load, no
  // deliveries, every node alive, imbalance at the balanced fixpoint.
  EXPECT_EQ(ts.times_us().front(), 0u);
  ASSERT_EQ(ts.row(0).size(), ts.columns().size());
  const auto col = [&](const std::string& name) {
    for (std::size_t i = 0; i < ts.columns().size(); ++i) {
      if (ts.columns()[i] == name) return ts.row(0)[i];
    }
    ADD_FAILURE() << "missing column " << name;
    return -1.0;
  };
  EXPECT_EQ(col("owned_subs_max"), 0.0);
  EXPECT_EQ(col("notifications_delivered"), 0.0);
  EXPECT_EQ(col("alive_nodes"), 16.0);
  EXPECT_EQ(col("load_max_over_mean"), 0.0);
  EXPECT_EQ(col("load_gini"), 0.0);
}

// A zero-event run (sampler armed, nothing ever published) still
// produces a consistent export: rows match the schema arity and the
// imbalance columns stay finite.
TEST(TimeSeriesEdgeTest, ZeroEventRunExportsConsistentRows) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 8;
  cfg.chord.ring = RingParams{10};
  cfg.seed = 5;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(2, 1000));
  system.start_sampler(sim::sec(1));
  system.stop_sampler();

  const metrics::TimeSeries& ts = system.timeseries();
  ASSERT_EQ(ts.size(), 1u);  // baseline only: the timer was cancelled
  ASSERT_EQ(ts.row(0).size(), ts.columns().size());
  std::ostringstream json, csv;
  ts.write_json(json);
  ts.write_csv(csv);
  EXPECT_NE(json.str().find("\"rows\""), std::string::npos);
  EXPECT_EQ(csv.str().rfind("t_s,", 0), 0u);

  // With zero load everywhere the imbalance profile must be the
  // "balanced" fixpoint, not NaN.
  const pubsub::PubSubSystem::LoadImbalance imb = system.load_imbalance();
  EXPECT_EQ(imb.max_load, 0u);
  EXPECT_EQ(imb.mean_load, 0.0);
  EXPECT_EQ(imb.gini, 0.0);
}
