// Tests for the sweep runner's worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "cbps/common/thread_pool.hpp"

namespace cbps::common {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();
  pool.wait();  // idempotent
}

TEST(ThreadPoolTest, ZeroTaskShutdownJoinsCleanly) {
  ThreadPool pool(8);
  // Destructor must join workers that never saw a task.
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  bool ran = false;
  pool.submit([&ran] { ran = true; });
  pool.wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is cleared: the pool stays usable afterwards.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, WaitDrainsTasksSubmittedByTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1);
      pool.submit([&count] { count.fetch_add(1); });
    });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace cbps::common
