// End-to-end tests of the gossip dissemination backend: epidemic
// delivery completeness and exactly-once, cross-backend equivalence,
// anti-entropy repair under message loss, the partition/heal acceptance
// scenario and the crashed-member ghost guard.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/pubsub/audit.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"

namespace cbps {
namespace {

using workload::FaultScript;
using workload::FaultScriptRunner;

pubsub::SystemConfig gossip_config(std::size_t nodes,
                                   std::size_t replication = 0) {
  pubsub::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 11;
  cfg.chord.ring = RingParams{11};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.dissemination = pubsub::PubSubConfig::Dissemination::kGossip;
  cfg.pubsub.replication_factor = replication;
  return cfg;
}

// Drive a standard workload to completion and drain the network.
pubsub::DeliveryChecker::Report drive(pubsub::PubSubSystem& system,
                                      pubsub::DeliveryChecker& checker,
                                      std::size_t subs, std::size_t pubs,
                                      std::uint64_t gen_seed,
                                      sim::SimTime extra_drain = 0) {
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, gen_seed);
  workload::DriverParams dp;
  dp.max_subscriptions = subs;
  dp.max_publications = pubs;
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();
  while (!driver.finished()) system.run_for(sim::sec(60));
  if (extra_drain > 0) system.run_for(extra_drain);
  system.quiesce();
  return checker.verify();
}

TEST(GossipTest, EpidemicDeliversEveryMatchExactlyOnce) {
  pubsub::PubSubSystem system(gossip_config(32),
                              pubsub::Schema::uniform(3, 99'999));
  pubsub::DeliveryChecker checker;
  const auto report = drive(system, checker, 24, 80, 23);

  ASSERT_GT(report.expected, 50u);
  EXPECT_TRUE(report.ok())
      << (report.issues.empty() ? "" : report.issues[0]);

  const auto& gs = system.gossip_stats();
  EXPECT_GT(gs.pushes_sent, 0u);
  // Loss-free wire: the push phase alone reaches everyone, so the
  // anti-entropy exchanges must find nothing to pull back.
  EXPECT_EQ(gs.repair_records, 0u);
  // The gossip backend fully replaces the notify leg: everything the
  // rendezvous emits travels in the gossip message class.
  EXPECT_EQ(system.traffic().hops(overlay::MessageClass::kNotify), 0u);
  EXPECT_GT(system.traffic().hops(overlay::MessageClass::kGossip), 0u);
}

TEST(GossipTest, EpidemicFansOutWithRedundantPushes) {
  // A dense match group: many members subscribe to the same narrow
  // range, so one rendezvous seeds one record over the whole group and
  // the epidemic's redundancy becomes visible — more pushes than
  // members, duplicate receipts absorbed, still exactly-once delivery.
  pubsub::PubSubSystem system(gossip_config(32),
                              pubsub::Schema::uniform(2, 999));
  const std::size_t members = 16;
  for (std::size_t i = 0; i < members; ++i) {
    system.subscribe(i, {{0, {100, 140}}});
  }
  system.run_for(sim::sec(30));

  std::size_t delivered = 0;
  system.set_notify_sink(
      [&](Key, const pubsub::Notification&) { ++delivered; });
  system.publish(20, {120, 500});
  system.quiesce();

  EXPECT_EQ(delivered, members);
  const auto& gs = system.gossip_stats();
  EXPECT_GT(gs.pushes_sent, members);  // redundancy, not a spanning tree
  EXPECT_GT(gs.duplicates, 0u);        // absorbed by the seen-cache
}

TEST(GossipTest, BackendsDeliverTheSameNotificationSet) {
  // Same seed, same workload: every dissemination backend must produce
  // the identical delivery outcome — only the transport cost differs.
  const auto run = [](pubsub::PubSubConfig::Dissemination d) {
    pubsub::SystemConfig cfg = gossip_config(32);
    cfg.pubsub.dissemination = d;
    pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 99'999));
    pubsub::DeliveryChecker checker;
    const auto report = drive(system, checker, 20, 60, 29);
    EXPECT_TRUE(report.ok())
        << (report.issues.empty() ? "" : report.issues[0]);
    return report.delivered;
  };

  const std::uint64_t unicast =
      run(pubsub::PubSubConfig::Dissemination::kUnicast);
  EXPECT_GT(unicast, 0u);
  EXPECT_EQ(run(pubsub::PubSubConfig::Dissemination::kMcast), unicast);
  EXPECT_EQ(run(pubsub::PubSubConfig::Dissemination::kGossip), unicast);
}

TEST(GossipTest, AntiEntropyRepairsWhatLossyPushesMiss) {
  // Gossip messages are exempt from the ack/retry transport, so under
  // 25% uniform loss a good fraction of pushes vanish. The periodic
  // digest exchange must pull every missed record back within the
  // gossip window: no notification stays missing.
  std::string error;
  const auto script =
      FaultScript::parse("loss at=0 model=uniform rate=0.25", &error);
  ASSERT_TRUE(script.has_value()) << error;

  pubsub::SystemConfig cfg = gossip_config(32);
  // Each repair needs three unacked legs to survive (digest, reply,
  // pull), so one exchange succeeds with p ~ 0.75^3. Provision enough
  // attempts for that loss rate: a longer retention window and a
  // tighter digest period.
  cfg.pubsub.anti_entropy_period = sim::sec(5);
  cfg.pubsub.gossip_window = sim::sec(180);
  cfg.chord.force_reliable = script->needs_reliable_transport();
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 99'999));
  FaultScriptRunner runner(system, *script, 5);
  runner.start();

  pubsub::DeliveryChecker checker;
  const auto report =
      drive(system, checker, 20, 80, 31, /*extra_drain=*/sim::sec(240));

  ASSERT_GT(report.expected, 40u);
  EXPECT_EQ(report.missing, 0u)
      << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.duplicates, 0u);

  const auto& gs = system.gossip_stats();
  EXPECT_GT(gs.digests_sent, 0u);
  EXPECT_GT(gs.repair_records, 0u);  // the loss actually bit, and healed
}

TEST(GossipFaultScenarioTest, PostHealDeliveryIsCompleteWithGossip) {
  // The fault-matrix acceptance scenario on the gossip backend: cut 40%
  // of the ring off for 200 s mid-run, heal, and require a clean system
  // audit plus complete exactly-once delivery for post-heal publishes.
  const auto script = FaultScript::parse("partition at=100 heal=300 frac=0.4");
  ASSERT_TRUE(script.has_value());
  pubsub::SystemConfig cfg = gossip_config(48, /*replication=*/2);
  cfg.seed = 5;
  cfg.chord.force_reliable = script->needs_reliable_transport();
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  FaultScriptRunner runner(system, *script, 5);
  runner.set_delivery_checker(&checker);
  runner.start();

  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 19);
  workload::DriverParams dp;
  dp.max_subscriptions = 30;
  dp.max_publications = 120;
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  while (!driver.finished()) system.run_for(sim::sec(60));
  system.run_for(sim::sec(120));
  system.network().stop_maintenance_all();
  system.quiesce();

  const pubsub::SystemAuditReport audit = pubsub::audit_system(system);
  EXPECT_TRUE(audit.ok()) << (audit.issues.empty() ? "" : audit.issues[0]);

  const sim::SimTime window =
      script->all_clear_at() + 8 * system.config().chord.stabilize_period;
  const auto report = checker.verify(sim::sec(15), window);
  ASSERT_GT(report.expected, 20u);
  EXPECT_EQ(report.missing, 0u)
      << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.spurious, 0u);
  EXPECT_GT(system.gossip_stats().pushes_sent, 0u);
}

TEST(GossipFaultScenarioTest, CrashedMemberGetsNoGhostGossipDeliveries) {
  // A crashed subscriber stays in the groups of records seeded before
  // the ring converges, so pushes keep targeting it — key-routing lands
  // them on the new key owner, which must ghost-drop them instead of
  // surfacing a dead node's notifications.
  pubsub::SystemConfig cfg = gossip_config(24, /*replication=*/2);
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(2, 999));
  system.network().start_maintenance_all();

  const std::size_t victim = 5;
  const Key victim_id = system.node_id(victim);
  struct SinkEntry {
    Key subscriber;
    sim::SimTime when;
  };
  std::vector<SinkEntry> deliveries;
  system.set_notify_sink([&](Key s, const pubsub::Notification&) {
    deliveries.push_back({s, system.sim().now()});
  });

  // The victim subscribes to everything: every publish matches it.
  system.subscribe(victim, {{0, {0, 999}}, {1, {0, 999}}});
  for (std::size_t i = 0; i < 4; ++i) {
    system.subscribe((victim + 1 + i) % system.node_count(),
                     {{0, {0, 999}}});
  }
  system.run_for(sim::sec(30));

  const sim::SimTime crash_at = system.sim().now();
  system.crash_node(victim);
  for (int i = 0; i < 40; ++i) {
    system.publish((victim + 1 + i % 8) % system.node_count(),
                   {static_cast<Value>(i * 20 % 1000),
                    static_cast<Value>(i * 7 % 1000)});
    system.run_for(sim::sec(5));
  }
  system.network().stop_maintenance_all();
  system.quiesce();

  for (const SinkEntry& d : deliveries) {
    EXPECT_FALSE(d.subscriber == victim_id && d.when > crash_at)
        << "ghost delivery at crashed node " << victim_id << " at t="
        << sim::to_seconds(d.when);
  }
  // The guard actually fired: pushes addressed to the dead member were
  // detected and dropped somewhere in the ring.
  EXPECT_GT(system.gossip_stats().misdirected, 0u);
}

}  // namespace
}  // namespace cbps
